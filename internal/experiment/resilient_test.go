package experiment

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"intracache/internal/core"
)

func fastRetry(attempts int) RetryPolicy {
	return RetryPolicy{Attempts: attempts, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond}
}

func TestRunCellRetriesTransientFailure(t *testing.T) {
	calls := 0
	attempts, err := runCell(context.Background(), CellOptions{Retry: fastRetry(4)},
		func(ctx context.Context, progress func()) error {
			calls++
			if calls < 3 {
				return fmt.Errorf("transient %d", calls)
			}
			return nil
		})
	if err != nil {
		t.Fatalf("runCell: %v", err)
	}
	if attempts != 3 || calls != 3 {
		t.Fatalf("attempts=%d calls=%d, want 3/3", attempts, calls)
	}
}

func TestRunCellRecoversPanics(t *testing.T) {
	calls := 0
	attempts, err := runCell(context.Background(), CellOptions{Retry: fastRetry(3)},
		func(ctx context.Context, progress func()) error {
			calls++
			if calls == 1 {
				panic("fault-injected explosion")
			}
			return nil
		})
	if err != nil {
		t.Fatalf("runCell after panic: %v", err)
	}
	if attempts != 2 {
		t.Fatalf("attempts=%d, want 2", attempts)
	}
}

func TestRunCellExhaustsAttempts(t *testing.T) {
	boom := errors.New("deterministic failure")
	attempts, err := runCell(context.Background(), CellOptions{Retry: fastRetry(3)},
		func(ctx context.Context, progress func()) error { return boom })
	if !errors.Is(err, boom) {
		t.Fatalf("err=%v, want the cell's error", err)
	}
	if attempts != 3 {
		t.Fatalf("attempts=%d, want 3", attempts)
	}
}

func TestRunCellNoRetryAfterParentCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	attempts, err := runCell(ctx, CellOptions{Retry: fastRetry(5)},
		func(cellCtx context.Context, progress func()) error {
			cancel()
			return errors.New("failed while shutting down")
		})
	if attempts != 1 {
		t.Fatalf("attempts=%d, want 1 — retrying would hold shutdown hostage", attempts)
	}
	if err == nil {
		t.Fatal("expected an error")
	}
}

func TestRunCellDeadline(t *testing.T) {
	attempts, err := runCell(context.Background(),
		CellOptions{Timeout: 10 * time.Millisecond, Retry: fastRetry(2)},
		func(cellCtx context.Context, progress func()) error {
			<-cellCtx.Done()
			return cellCtx.Err()
		})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err=%v, want deadline exceeded", err)
	}
	if attempts != 2 {
		t.Fatalf("attempts=%d, want both attempts to hit the deadline", attempts)
	}
}

func TestRunCellStallWatchdog(t *testing.T) {
	// The cell never reports progress: the watchdog must cancel it and
	// the error must identify the stall.
	_, err := runCell(context.Background(),
		CellOptions{StallTimeout: 10 * time.Millisecond, Retry: fastRetry(1)},
		func(cellCtx context.Context, progress func()) error {
			<-cellCtx.Done()
			return cellCtx.Err()
		})
	if !errors.Is(err, ErrCellStalled) {
		t.Fatalf("err=%v, want ErrCellStalled", err)
	}
}

func TestRunCellProgressFeedsWatchdog(t *testing.T) {
	// Steady progress keeps a slow cell alive well past StallTimeout.
	// The stall window is generous relative to the progress period so a
	// GC or scheduler pause on a loaded 1-CPU runner can't flake it.
	start := time.Now()
	_, err := runCell(context.Background(),
		CellOptions{StallTimeout: 100 * time.Millisecond, Retry: fastRetry(1)},
		func(cellCtx context.Context, progress func()) error {
			for time.Since(start) < 300*time.Millisecond {
				select {
				case <-cellCtx.Done():
					return cellCtx.Err()
				case <-time.After(5 * time.Millisecond):
					progress()
				}
			}
			return nil
		})
	if err != nil {
		t.Fatalf("progressing cell was killed: %v", err)
	}
}

func TestForEachIndexCtxCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := 0
	errs := forEachIndexCtx(ctx, 8, 2, func(i int) error { ran++; return nil })
	if ran != 0 {
		t.Fatalf("%d cells ran after cancellation", ran)
	}
	for i, err := range errs {
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("errs[%d]=%v, want context.Canceled", i, err)
		}
	}
}

func TestForEachIndexWorkersClampedToGOMAXPROCS(t *testing.T) {
	// workers <= 0 must clamp, not deadlock or serialize away: every
	// index still runs exactly once.
	for _, workers := range []int{-3, 0, 1, 100} {
		seen := make([]bool, 17)
		errs := forEachIndex(len(seen), workers, func(i int) error {
			seen[i] = true
			return nil
		})
		for i := range seen {
			if !seen[i] || errs[i] != nil {
				t.Fatalf("workers=%d: index %d ran=%v err=%v", workers, i, seen[i], errs[i])
			}
		}
	}
}

func TestSweepJournaledResume(t *testing.T) {
	cfg := QuickConfig()
	cfg.Sections = 4
	points := []SweepPoint{
		{Label: "a", Cfg: cfg},
		{Label: "b", Cfg: func() Config { c := cfg; c.Seed = 7; return c }()},
	}
	journal := filepath.Join(t.TempDir(), "sweep.journal")
	opts := SweepOptions{Workers: 2, JournalPath: journal}

	first, err := SweepJournaled(context.Background(), points, "cg",
		core.PolicyShared, core.PolicyStaticEqual, opts)
	if err != nil {
		t.Fatalf("first sweep: %v", err)
	}
	for _, r := range first {
		if r.Resumed {
			t.Fatalf("cell %q resumed on the first pass", r.Label)
		}
	}

	second, err := SweepJournaled(context.Background(), points, "cg",
		core.PolicyShared, core.PolicyStaticEqual, opts)
	if err != nil {
		t.Fatalf("second sweep: %v", err)
	}
	for i, r := range second {
		if !r.Resumed {
			t.Errorf("cell %q not served from the journal", r.Label)
		}
		if r.BaselineCycles != first[i].BaselineCycles ||
			r.DynamicCycles != first[i].DynamicCycles ||
			r.ImprovementPct != first[i].ImprovementPct {
			t.Errorf("cell %q: journal round trip changed the result", r.Label)
		}
	}
}

func TestSweepJournaledRejectsForeignJournal(t *testing.T) {
	cfg := QuickConfig()
	cfg.Sections = 4
	points := []SweepPoint{{Label: "a", Cfg: cfg}}
	journal := filepath.Join(t.TempDir(), "sweep.journal")
	opts := SweepOptions{JournalPath: journal}
	if _, err := SweepJournaled(context.Background(), points, "cg",
		core.PolicyShared, core.PolicyStaticEqual, opts); err != nil {
		t.Fatalf("first sweep: %v", err)
	}
	// Same journal, different sweep identity: must refuse, not skip
	// cells that were computed under different parameters.
	other := points
	other[0].Cfg.Seed = 99
	if _, err := SweepJournaled(context.Background(), other, "cg",
		core.PolicyShared, core.PolicyStaticEqual, opts); err == nil {
		t.Fatal("sweep accepted a journal with a different fingerprint")
	}
}

func TestSweepJournaledCancelled(t *testing.T) {
	cfg := QuickConfig()
	cfg.Sections = 4
	var points []SweepPoint
	for i := 0; i < 6; i++ {
		c := cfg
		c.Seed = uint64(i + 1)
		points = append(points, SweepPoint{Label: fmt.Sprintf("p%d", i), Cfg: c})
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	out, err := SweepJournaled(ctx, points, "cg",
		core.PolicyShared, core.PolicyStaticEqual, SweepOptions{Workers: 2})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err=%v, want context.Canceled", err)
	}
	if len(out) != len(points) {
		t.Fatalf("got %d results, want a slot per point", len(out))
	}
}

func TestRobustnessSweepJournaledResume(t *testing.T) {
	cfg := QuickConfig()
	cfg.Sections = 4
	benchmarks := []string{"cg"}
	policies := []core.Policy{core.PolicyStaticEqual, core.PolicyModelBased}
	levels := DefaultFaultLevels()[:2] // clean + moderate
	journal := filepath.Join(t.TempDir(), "robust.journal")
	opts := SweepOptions{Workers: 2, JournalPath: journal}

	first, err := RobustnessSweepJournaled(context.Background(), cfg, benchmarks, policies, levels, opts)
	if err != nil {
		t.Fatalf("first sweep: %v", err)
	}
	second, err := RobustnessSweepJournaled(context.Background(), cfg, benchmarks, policies, levels, opts)
	if err != nil {
		t.Fatalf("second sweep: %v", err)
	}
	if len(first) != len(second) {
		t.Fatalf("cell counts differ: %d vs %d", len(first), len(second))
	}
	for i := range second {
		if second[i].Err != nil {
			t.Fatalf("cell %d errored: %v", i, second[i].Err)
		}
		if !second[i].Resumed {
			t.Errorf("cell %s/%s/%s not served from the journal",
				second[i].Benchmark, second[i].Policy, second[i].Level)
		}
		if second[i].WallCycles != first[i].WallCycles ||
			second[i].ImprovementPct != first[i].ImprovementPct ||
			second[i].Health != first[i].Health {
			t.Errorf("cell %d: journal round trip changed the result", i)
		}
	}
}

func TestConfigFingerprintDistinguishesRuns(t *testing.T) {
	a := QuickConfig()
	b := a
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("identical configs produced different fingerprints")
	}
	b.Seed++
	if a.Fingerprint() == b.Fingerprint() {
		t.Fatal("seed change did not change the fingerprint")
	}
	c := a
	c.Fault = &DefaultFaultLevels()[1].Plan
	if a.Fingerprint() == c.Fingerprint() {
		t.Fatal("fault plan did not change the fingerprint")
	}
}
