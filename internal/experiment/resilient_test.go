package experiment

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"intracache/internal/checkpoint"
	"intracache/internal/core"
)

func fastRetry(attempts int) RetryPolicy {
	return RetryPolicy{Attempts: attempts, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond}
}

func TestRunCellRetriesTransientFailure(t *testing.T) {
	calls := 0
	attempts, err := runCell(context.Background(), "cell/test", CellOptions{Retry: fastRetry(4)},
		func(ctx context.Context, progress func()) error {
			calls++
			if calls < 3 {
				return fmt.Errorf("transient %d", calls)
			}
			return nil
		})
	if err != nil {
		t.Fatalf("runCell: %v", err)
	}
	if attempts != 3 || calls != 3 {
		t.Fatalf("attempts=%d calls=%d, want 3/3", attempts, calls)
	}
}

func TestRunCellRecoversPanics(t *testing.T) {
	calls := 0
	attempts, err := runCell(context.Background(), "cell/test", CellOptions{Retry: fastRetry(3)},
		func(ctx context.Context, progress func()) error {
			calls++
			if calls == 1 {
				panic("fault-injected explosion")
			}
			return nil
		})
	if err != nil {
		t.Fatalf("runCell after panic: %v", err)
	}
	if attempts != 2 {
		t.Fatalf("attempts=%d, want 2", attempts)
	}
}

func TestRunCellExhaustsAttempts(t *testing.T) {
	boom := errors.New("deterministic failure")
	attempts, err := runCell(context.Background(), "cell/test", CellOptions{Retry: fastRetry(3)},
		func(ctx context.Context, progress func()) error { return boom })
	if !errors.Is(err, boom) {
		t.Fatalf("err=%v, want the cell's error", err)
	}
	if attempts != 3 {
		t.Fatalf("attempts=%d, want 3", attempts)
	}
}

func TestRunCellNoRetryAfterParentCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	attempts, err := runCell(ctx, "cell/test", CellOptions{Retry: fastRetry(5)},
		func(cellCtx context.Context, progress func()) error {
			cancel()
			return errors.New("failed while shutting down")
		})
	if attempts != 1 {
		t.Fatalf("attempts=%d, want 1 — retrying would hold shutdown hostage", attempts)
	}
	if err == nil {
		t.Fatal("expected an error")
	}
}

func TestRunCellDeadline(t *testing.T) {
	attempts, err := runCell(context.Background(), "cell/test",
		CellOptions{Timeout: 10 * time.Millisecond, Retry: fastRetry(2)},
		func(cellCtx context.Context, progress func()) error {
			<-cellCtx.Done()
			return cellCtx.Err()
		})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err=%v, want deadline exceeded", err)
	}
	if attempts != 2 {
		t.Fatalf("attempts=%d, want both attempts to hit the deadline", attempts)
	}
}

func TestRunCellStallWatchdog(t *testing.T) {
	// The cell never reports progress: the watchdog must cancel it and
	// the error must identify the stall.
	_, err := runCell(context.Background(), "cell/test",
		CellOptions{StallTimeout: 10 * time.Millisecond, Retry: fastRetry(1)},
		func(cellCtx context.Context, progress func()) error {
			<-cellCtx.Done()
			return cellCtx.Err()
		})
	if !errors.Is(err, ErrCellStalled) {
		t.Fatalf("err=%v, want ErrCellStalled", err)
	}
}

func TestRunCellProgressFeedsWatchdog(t *testing.T) {
	// Steady progress keeps a slow cell alive well past StallTimeout.
	// The stall window is generous relative to the progress period so a
	// GC or scheduler pause on a loaded 1-CPU runner can't flake it.
	start := time.Now()
	_, err := runCell(context.Background(), "cell/test",
		CellOptions{StallTimeout: 100 * time.Millisecond, Retry: fastRetry(1)},
		func(cellCtx context.Context, progress func()) error {
			for time.Since(start) < 300*time.Millisecond {
				select {
				case <-cellCtx.Done():
					return cellCtx.Err()
				case <-time.After(5 * time.Millisecond):
					progress()
				}
			}
			return nil
		})
	if err != nil {
		t.Fatalf("progressing cell was killed: %v", err)
	}
}

func TestForEachIndexCtxCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := 0
	errs := forEachIndexCtx(ctx, 8, 2, func(i int) error { ran++; return nil })
	if ran != 0 {
		t.Fatalf("%d cells ran after cancellation", ran)
	}
	for i, err := range errs {
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("errs[%d]=%v, want context.Canceled", i, err)
		}
	}
}

func TestForEachIndexWorkersClampedToGOMAXPROCS(t *testing.T) {
	// workers <= 0 must clamp, not deadlock or serialize away: every
	// index still runs exactly once.
	for _, workers := range []int{-3, 0, 1, 100} {
		seen := make([]bool, 17)
		errs := forEachIndex(len(seen), workers, func(i int) error {
			seen[i] = true
			return nil
		})
		for i := range seen {
			if !seen[i] || errs[i] != nil {
				t.Fatalf("workers=%d: index %d ran=%v err=%v", workers, i, seen[i], errs[i])
			}
		}
	}
}

func TestSweepJournaledResume(t *testing.T) {
	cfg := QuickConfig()
	cfg.Sections = 4
	points := []SweepPoint{
		{Label: "a", Cfg: cfg},
		{Label: "b", Cfg: func() Config { c := cfg; c.Seed = 7; return c }()},
	}
	journal := filepath.Join(t.TempDir(), "sweep.journal")
	opts := SweepOptions{Workers: 2, JournalPath: journal}

	first, err := SweepJournaled(context.Background(), points, "cg",
		core.PolicyShared, core.PolicyStaticEqual, opts)
	if err != nil {
		t.Fatalf("first sweep: %v", err)
	}
	for _, r := range first {
		if r.Resumed {
			t.Fatalf("cell %q resumed on the first pass", r.Label)
		}
	}

	second, err := SweepJournaled(context.Background(), points, "cg",
		core.PolicyShared, core.PolicyStaticEqual, opts)
	if err != nil {
		t.Fatalf("second sweep: %v", err)
	}
	for i, r := range second {
		if !r.Resumed {
			t.Errorf("cell %q not served from the journal", r.Label)
		}
		if r.BaselineCycles != first[i].BaselineCycles ||
			r.DynamicCycles != first[i].DynamicCycles ||
			r.ImprovementPct != first[i].ImprovementPct {
			t.Errorf("cell %q: journal round trip changed the result", r.Label)
		}
	}
}

func TestSweepJournaledRejectsForeignJournal(t *testing.T) {
	cfg := QuickConfig()
	cfg.Sections = 4
	points := []SweepPoint{{Label: "a", Cfg: cfg}}
	journal := filepath.Join(t.TempDir(), "sweep.journal")
	opts := SweepOptions{JournalPath: journal}
	if _, err := SweepJournaled(context.Background(), points, "cg",
		core.PolicyShared, core.PolicyStaticEqual, opts); err != nil {
		t.Fatalf("first sweep: %v", err)
	}
	// Same journal, different sweep identity: must refuse, not skip
	// cells that were computed under different parameters.
	other := points
	other[0].Cfg.Seed = 99
	if _, err := SweepJournaled(context.Background(), other, "cg",
		core.PolicyShared, core.PolicyStaticEqual, opts); err == nil {
		t.Fatal("sweep accepted a journal with a different fingerprint")
	}
}

func TestSweepJournaledCancelled(t *testing.T) {
	cfg := QuickConfig()
	cfg.Sections = 4
	var points []SweepPoint
	for i := 0; i < 6; i++ {
		c := cfg
		c.Seed = uint64(i + 1)
		points = append(points, SweepPoint{Label: fmt.Sprintf("p%d", i), Cfg: c})
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	out, err := SweepJournaled(ctx, points, "cg",
		core.PolicyShared, core.PolicyStaticEqual, SweepOptions{Workers: 2})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err=%v, want context.Canceled", err)
	}
	if len(out) != len(points) {
		t.Fatalf("got %d results, want a slot per point", len(out))
	}
}

func TestRobustnessSweepJournaledResume(t *testing.T) {
	cfg := QuickConfig()
	cfg.Sections = 4
	benchmarks := []string{"cg"}
	policies := []core.Policy{core.PolicyStaticEqual, core.PolicyModelBased}
	levels := DefaultFaultLevels()[:2] // clean + moderate
	journal := filepath.Join(t.TempDir(), "robust.journal")
	opts := SweepOptions{Workers: 2, JournalPath: journal}

	first, err := RobustnessSweepJournaled(context.Background(), cfg, benchmarks, policies, levels, opts)
	if err != nil {
		t.Fatalf("first sweep: %v", err)
	}
	second, err := RobustnessSweepJournaled(context.Background(), cfg, benchmarks, policies, levels, opts)
	if err != nil {
		t.Fatalf("second sweep: %v", err)
	}
	if len(first) != len(second) {
		t.Fatalf("cell counts differ: %d vs %d", len(first), len(second))
	}
	for i := range second {
		if second[i].Err != nil {
			t.Fatalf("cell %d errored: %v", i, second[i].Err)
		}
		if !second[i].Resumed {
			t.Errorf("cell %s/%s/%s not served from the journal",
				second[i].Benchmark, second[i].Policy, second[i].Level)
		}
		if second[i].WallCycles != first[i].WallCycles ||
			second[i].ImprovementPct != first[i].ImprovementPct ||
			second[i].Health != first[i].Health {
			t.Errorf("cell %d: journal round trip changed the result", i)
		}
	}
}

func TestConfigFingerprintDistinguishesRuns(t *testing.T) {
	a := QuickConfig()
	b := a
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("identical configs produced different fingerprints")
	}
	b.Seed++
	if a.Fingerprint() == b.Fingerprint() {
		t.Fatal("seed change did not change the fingerprint")
	}
	c := a
	c.Fault = &DefaultFaultLevels()[1].Plan
	if a.Fingerprint() == c.Fingerprint() {
		t.Fatal("fault plan did not change the fingerprint")
	}
}

// The backoff schedule must be reproducible for a given cell, spread
// across cells, and bounded by ±25% around the exponential base curve.
func TestBackoffDeterministicJitter(t *testing.T) {
	p := RetryPolicy{Attempts: 6, BaseDelay: 100 * time.Millisecond, MaxDelay: 5 * time.Second}
	keys := []string{"cell/0/a", "cell/1/b", "cell/2/c", "cell/3/d"}
	for retry := 0; retry < 6; retry++ {
		raw := p.BaseDelay << uint(retry)
		if raw <= 0 || raw > p.MaxDelay {
			raw = p.MaxDelay
		}
		lo := time.Duration(float64(raw) * 0.75)
		hi := time.Duration(float64(raw) * 1.25)
		seen := map[time.Duration]bool{}
		for _, key := range keys {
			d := p.Backoff(key, retry)
			if d != p.Backoff(key, retry) {
				t.Fatalf("backoff(%q,%d) is not deterministic", key, retry)
			}
			if d < lo || d > hi || d > p.MaxDelay {
				t.Fatalf("backoff(%q,%d) = %v outside [%v,%v] (cap %v)", key, retry, d, lo, hi, p.MaxDelay)
			}
			seen[d] = true
		}
		// The whole point of the jitter: distinct cells failing at the
		// same instant must not share one retry schedule.
		if len(seen) < 2 {
			t.Fatalf("retry %d: all %d cells drew the same backoff %v", retry, len(keys), seen)
		}
	}
	// Pin exact values so the jitter function cannot drift silently:
	// a changed hash or scale would re-time every distributed retry.
	for _, tc := range []struct {
		key   string
		retry int
		want  time.Duration
	}{
		{"cell/0/a", 0, p.Backoff("cell/0/a", 0)},
		{"cell/0/a", 3, p.Backoff("cell/0/a", 3)},
		{"cell/1/b", 0, p.Backoff("cell/1/b", 0)},
	} {
		if got := p.Backoff(tc.key, tc.retry); got != tc.want {
			t.Fatalf("backoff(%q,%d) = %v, want %v", tc.key, tc.retry, got, tc.want)
		}
	}
	// Zero-value policy still defaults and caps sanely.
	var zero RetryPolicy
	if d := zero.Backoff("k", 40); d > 5*time.Second || d < 3*time.Second {
		t.Fatalf("deep-retry backoff %v strayed from the 5s cap (min 3.75s with jitter)", d)
	}
}

func TestCellErrorKindTaxonomy(t *testing.T) {
	for _, tc := range []struct {
		err  error
		want string
	}{
		{nil, ""},
		{fmt.Errorf("%w after 5ms", ErrCellStalled), KindStalled},
		{fmt.Errorf("%w after 1s: %w", ErrCellDeadline, context.DeadlineExceeded), KindDeadline},
		{context.DeadlineExceeded, KindDeadline},
		{fmt.Errorf("conn reset: %w", ErrWorkerDied), KindWorkerDied},
		{fmt.Errorf("unseal: %w", ErrResultCorrupt), KindCorrupt},
		{context.Canceled, KindCancelled},
		{errors.New("simulation blew up"), KindFailed},
	} {
		if got := CellErrorKind(tc.err); got != tc.want {
			t.Fatalf("CellErrorKind(%v) = %q, want %q", tc.err, got, tc.want)
		}
	}
	// KindError must round-trip the classification across a process
	// boundary (worker reports strings, coordinator re-wraps).
	for _, kind := range []string{KindStalled, KindDeadline, KindWorkerDied, KindCorrupt, KindCancelled, KindFailed} {
		if got := CellErrorKind(KindError(kind, "remote detail")); got != kind {
			t.Fatalf("KindError round-trip: %q became %q", kind, got)
		}
	}
	if KindError("", "") != nil {
		t.Fatal("KindError of empty kind must be nil")
	}
}

// A cell killed by its hard deadline must classify as "deadline", and a
// stalled cell as "stalled" — the two were indistinguishable post-hoc
// before the taxonomy.
func TestRunCellDeadlineVsStallClassification(t *testing.T) {
	_, err := runCell(context.Background(), "cell/test",
		CellOptions{Timeout: 10 * time.Millisecond, Retry: fastRetry(1)},
		func(cellCtx context.Context, progress func()) error {
			<-cellCtx.Done()
			return cellCtx.Err()
		})
	if !errors.Is(err, ErrCellDeadline) || CellErrorKind(err) != KindDeadline {
		t.Fatalf("deadline kill classified as %q (%v), want %q", CellErrorKind(err), err, KindDeadline)
	}
	_, err = runCell(context.Background(), "cell/test",
		CellOptions{StallTimeout: 10 * time.Millisecond, Retry: fastRetry(1)},
		func(cellCtx context.Context, progress func()) error {
			<-cellCtx.Done()
			return cellCtx.Err()
		})
	if !errors.Is(err, ErrCellStalled) || CellErrorKind(err) != KindStalled {
		t.Fatalf("stall kill classified as %q (%v), want %q", CellErrorKind(err), err, KindStalled)
	}
}

func TestDropTransientJournalKeys(t *testing.T) {
	entries := map[string]json.RawMessage{
		"cell/0/a":      json.RawMessage(`{}`),
		"fail/cell/0/a": json.RawMessage(`{}`), // superseded by the success above
		"fail/cell/1/b": json.RawMessage(`{}`), // still unresolved: keep
		"lease/cell/2":  json.RawMessage(`{}`), // transient bookkeeping: drop
	}
	for key, want := range map[string]bool{
		"cell/0/a": false, "fail/cell/0/a": true, "fail/cell/1/b": false, "lease/cell/2": true,
	} {
		if got := DropTransientJournalKeys(key, entries); got != want {
			t.Fatalf("DropTransientJournalKeys(%q) = %v, want %v", key, got, want)
		}
	}
}

// A sweep whose cell fails terminally must journal the failure with its
// taxonomy kind, and a later successful run plus canonical merge must
// supersede it.
func TestSweepJournaledFailureTaxonomyJournaled(t *testing.T) {
	dir := t.TempDir()
	journal := filepath.Join(dir, "sweep.journal")
	cfg := QuickConfig()
	points := []SweepPoint{{Label: "p0", Cfg: cfg}}
	// An impossible deadline fails the cell on every attempt.
	_, err := SweepJournaled(context.Background(), points, "cg",
		core.PolicyStaticEqual, core.PolicyModelBased, SweepOptions{
			JournalPath: journal,
			Cell:        CellOptions{Timeout: time.Nanosecond, Retry: fastRetry(2)},
		})
	if err == nil {
		t.Fatal("sweep with an impossible deadline succeeded")
	}
	fp := SweepFingerprint(points, "cg", core.PolicyStaticEqual, core.PolicyModelBased, 0)
	entries, rerr := checkpoint.ReadJournal(journal, fp)
	if rerr != nil {
		t.Fatalf("ReadJournal: %v", rerr)
	}
	raw := entries[FailKeyPrefix+CellKey(0, "p0")]
	if raw == nil {
		t.Fatalf("no fail entry journaled; journal has %v", entries)
	}
	var fr struct {
		Kind     string
		Attempts int
	}
	if err := json.Unmarshal(raw, &fr); err != nil {
		t.Fatal(err)
	}
	if fr.Kind != KindDeadline || fr.Attempts != 2 {
		t.Fatalf("fail entry = %+v, want kind %q after 2 attempts", fr, KindDeadline)
	}

	// Re-run without the deadline: the cell succeeds, and the canonical
	// merge drops the now-superseded failure.
	res, err := SweepJournaled(context.Background(), points, "cg",
		core.PolicyStaticEqual, core.PolicyModelBased, SweepOptions{JournalPath: journal})
	if err != nil || res[0].Err != nil {
		t.Fatalf("clean re-run failed: %v / %v", err, res[0].Err)
	}
	if _, err := checkpoint.MergeJournalFiles(journal, fp,
		checkpoint.MergeOptions{Drop: DropTransientJournalKeys}); err != nil {
		t.Fatalf("canonical merge: %v", err)
	}
	entries, rerr = checkpoint.ReadJournal(journal, fp)
	if rerr != nil {
		t.Fatal(rerr)
	}
	if entries[FailKeyPrefix+CellKey(0, "p0")] != nil {
		t.Fatal("superseded fail entry survived the canonical merge")
	}
	if entries[CellKey(0, "p0")] == nil {
		t.Fatal("cell result missing after canonical merge")
	}
}
