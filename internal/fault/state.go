package fault

import (
	"fmt"

	"intracache/internal/sim"
)

// State is a full snapshot of an injector's mutable state. The inner
// controller is checkpointed separately by whoever owns it.
type State struct {
	Plan     Plan
	Rng      [4]uint64
	Prev     []sim.ThreadIntervalStats
	HavePrev bool
	Queue    [][]int
	Stats    Stats
}

// State captures the injector's RNG, sample memory, delayed-decision
// queue, and counters for checkpointing.
func (in *Injector) State() State {
	st := State{
		Plan:     in.plan,
		Rng:      in.rng.State(),
		HavePrev: in.havePrev,
		Stats:    in.stats,
	}
	if in.prev != nil {
		st.Prev = append([]sim.ThreadIntervalStats(nil), in.prev...)
	}
	for _, q := range in.queue {
		if q == nil {
			st.Queue = append(st.Queue, nil)
		} else {
			st.Queue = append(st.Queue, append([]int(nil), q...))
		}
	}
	return st
}

// Restore overlays a snapshot onto the injector. The injector must have
// been constructed with the same plan the snapshot was captured under.
func (in *Injector) Restore(st State) error {
	if st.Plan != in.plan {
		return fmt.Errorf("fault: restore plan %+v does not match %+v", st.Plan, in.plan)
	}
	if err := in.rng.Restore(st.Rng); err != nil {
		return err
	}
	in.prev = nil
	if st.Prev != nil {
		in.prev = append([]sim.ThreadIntervalStats(nil), st.Prev...)
	}
	in.havePrev = st.HavePrev
	in.queue = nil
	for _, q := range st.Queue {
		if q == nil {
			in.queue = append(in.queue, nil)
		} else {
			in.queue = append(in.queue, append([]int(nil), q...))
		}
	}
	in.stats = st.Stats
	return nil
}
