package fault

import (
	"fmt"
	"hash/crc64"
	"strconv"
	"strings"
	"sync"
	"time"

	"intracache/internal/xrand"
)

// Execution faults extend the package from telemetry faults (bad
// counter samples fed to a healthy process) to process faults: the
// dsweep chaos harness uses an ExecInjector inside workers to kill
// them mid-cell, hang them silently, delay their start, and corrupt or
// truncate their result payloads on the wire. The coordinator under
// test must survive all of it and still merge byte-identical results.
//
// Like telemetry faults, execution faults are deterministic — but with
// a stronger property: each decision is a pure function of (Seed, cell
// key, dispatch attempt), independent of which worker draws it, in
// what order, or in which process. A chaos run is therefore exactly
// reproducible even though cell scheduling is not.

// ExecFault is one injected execution-fault decision.
type ExecFault int

const (
	// ExecNone injects nothing; the dispatch runs clean.
	ExecNone ExecFault = iota
	// ExecKill terminates the worker process mid-cell, after partial
	// progress, without a reply.
	ExecKill
	// ExecHang stops the worker's progress and heartbeats mid-cell
	// while keeping its connection open — the silent-stall case only a
	// lease can catch.
	ExecHang
	// ExecSlowStart delays the start of the cell (a cold worker, an
	// overloaded host) without otherwise misbehaving.
	ExecSlowStart
	// ExecCorrupt flips bits in the sealed result payload.
	ExecCorrupt
	// ExecTruncate cuts the sealed result payload short.
	ExecTruncate
)

func (f ExecFault) String() string {
	switch f {
	case ExecNone:
		return "none"
	case ExecKill:
		return "kill"
	case ExecHang:
		return "hang"
	case ExecSlowStart:
		return "slow-start"
	case ExecCorrupt:
		return "corrupt"
	case ExecTruncate:
		return "truncate"
	}
	return fmt.Sprintf("ExecFault(%d)", int(f))
}

// ExecPlan configures execution-fault injection. The zero value
// injects nothing. At most one fault fires per dispatch: the rates
// partition a single uniform draw, so they must sum to at most 1.
type ExecPlan struct {
	// Seed drives every decision; same seed, same faults.
	Seed uint64

	// KillRate is the probability a dispatch kills its worker mid-cell.
	KillRate float64
	// HangRate is the probability a dispatch hangs its worker mid-cell.
	HangRate float64
	// SlowStartRate is the probability a dispatch is delayed by
	// SlowStart before computing.
	SlowStartRate float64
	// CorruptRate is the probability the result payload is bit-flipped.
	CorruptRate float64
	// TruncateRate is the probability the result payload is cut short.
	TruncateRate float64

	// SlowStart is the delay a slow-start draw applies (default 50ms).
	SlowStart time.Duration

	// FaultAttempts caps injection to a cell's first N dispatch
	// attempts (default 1). Later re-dispatches always run clean, which
	// bounds the chaos: every cell completes after finitely many
	// retries no matter how hostile the rates are.
	FaultAttempts int
}

// IsZero reports whether the plan injects nothing (seed and caps alone
// do not count).
func (p ExecPlan) IsZero() bool {
	return p.KillRate == 0 && p.HangRate == 0 && p.SlowStartRate == 0 &&
		p.CorruptRate == 0 && p.TruncateRate == 0
}

// Validate reports whether the plan's parameters are usable.
func (p ExecPlan) Validate() error {
	sum := 0.0
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"KillRate", p.KillRate},
		{"HangRate", p.HangRate},
		{"SlowStartRate", p.SlowStartRate},
		{"CorruptRate", p.CorruptRate},
		{"TruncateRate", p.TruncateRate},
	} {
		if f.v < 0 || f.v > 1 {
			return fmt.Errorf("fault: %s %v outside [0,1]", f.name, f.v)
		}
		sum += f.v
	}
	if sum > 1 {
		return fmt.Errorf("fault: execution fault rates sum to %v > 1 (they partition one draw)", sum)
	}
	if p.SlowStart < 0 {
		return fmt.Errorf("fault: negative SlowStart %v", p.SlowStart)
	}
	if p.FaultAttempts < 0 {
		return fmt.Errorf("fault: negative FaultAttempts %d", p.FaultAttempts)
	}
	return nil
}

// String renders the plan's active knobs compactly, for labels and the
// -chaos flag round trip.
func (p ExecPlan) String() string {
	if p.IsZero() {
		return "none"
	}
	var parts []string
	add := func(format string, args ...interface{}) {
		parts = append(parts, fmt.Sprintf(format, args...))
	}
	add("seed=%d", p.Seed)
	if p.KillRate > 0 {
		add("kill=%g", p.KillRate)
	}
	if p.HangRate > 0 {
		add("hang=%g", p.HangRate)
	}
	if p.SlowStartRate > 0 {
		add("slow=%g", p.SlowStartRate)
	}
	if p.CorruptRate > 0 {
		add("corrupt=%g", p.CorruptRate)
	}
	if p.TruncateRate > 0 {
		add("truncate=%g", p.TruncateRate)
	}
	if p.SlowStart > 0 {
		add("slow-delay=%s", p.SlowStart)
	}
	if p.FaultAttempts > 0 {
		add("attempts=%d", p.FaultAttempts)
	}
	return strings.Join(parts, ",")
}

func (p ExecPlan) slowStart() time.Duration {
	if p.SlowStart == 0 {
		return 50 * time.Millisecond
	}
	return p.SlowStart
}

func (p ExecPlan) faultAttempts() int {
	if p.FaultAttempts == 0 {
		return 1
	}
	return p.FaultAttempts
}

// ParseExecPlan parses the -chaos flag syntax: comma-separated
// key=value pairs, e.g. "seed=7,kill=0.3,hang=0.1,corrupt=0.05,
// slow=0.2,slow-delay=20ms,attempts=2". "none" or "" is the zero plan.
func ParseExecPlan(s string) (ExecPlan, error) {
	var p ExecPlan
	s = strings.TrimSpace(s)
	if s == "" || s == "none" {
		return p, nil
	}
	for _, field := range strings.Split(s, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(field), "=")
		if !ok {
			return p, fmt.Errorf("fault: chaos field %q is not key=value", field)
		}
		var err error
		switch key {
		case "seed":
			p.Seed, err = strconv.ParseUint(val, 10, 64)
		case "kill":
			p.KillRate, err = strconv.ParseFloat(val, 64)
		case "hang":
			p.HangRate, err = strconv.ParseFloat(val, 64)
		case "slow":
			p.SlowStartRate, err = strconv.ParseFloat(val, 64)
		case "corrupt":
			p.CorruptRate, err = strconv.ParseFloat(val, 64)
		case "truncate":
			p.TruncateRate, err = strconv.ParseFloat(val, 64)
		case "slow-delay":
			p.SlowStart, err = time.ParseDuration(val)
		case "attempts":
			p.FaultAttempts, err = strconv.Atoi(val)
		default:
			return p, fmt.Errorf("fault: unknown chaos knob %q", key)
		}
		if err != nil {
			return p, fmt.Errorf("fault: chaos %s: %w", key, err)
		}
	}
	return p, p.Validate()
}

// ExecStats counts the execution faults an injector has fired.
type ExecStats struct {
	Draws       uint64 // dispatch decisions taken
	Kills       uint64
	Hangs       uint64
	SlowStarts  uint64
	Corruptions uint64
	Truncations uint64
}

// ExecInjector makes execution-fault decisions for a plan. Safe for
// concurrent use; the only mutable state is the stats counters, so
// decisions stay order-independent.
type ExecInjector struct {
	plan ExecPlan

	mu    sync.Mutex
	stats ExecStats
}

// NewExecInjector builds an injector for the plan.
func NewExecInjector(plan ExecPlan) (*ExecInjector, error) {
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	return &ExecInjector{plan: plan}, nil
}

// Plan returns the injector's plan.
func (in *ExecInjector) Plan() ExecPlan { return in.plan }

// Stats returns the fault counters accumulated so far in this process.
func (in *ExecInjector) Stats() ExecStats {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.stats
}

// SlowStart returns the delay a slow-start draw applies.
func (in *ExecInjector) SlowStart() time.Duration { return in.plan.slowStart() }

// Draw decides the fault for dispatching cell key on its attempt'th
// try (1-based). The decision is a pure function of (Seed, key,
// attempt): every worker in a fleet, and every re-run of the same
// chaos configuration, draws identically.
func (in *ExecInjector) Draw(key string, attempt int) ExecFault {
	f := in.draw(key, attempt)
	in.mu.Lock()
	in.stats.Draws++
	switch f {
	case ExecKill:
		in.stats.Kills++
	case ExecHang:
		in.stats.Hangs++
	case ExecSlowStart:
		in.stats.SlowStarts++
	case ExecCorrupt:
		in.stats.Corruptions++
	case ExecTruncate:
		in.stats.Truncations++
	}
	in.mu.Unlock()
	return f
}

func (in *ExecInjector) draw(key string, attempt int) ExecFault {
	p := in.plan
	if p.IsZero() || attempt > p.faultAttempts() {
		return ExecNone
	}
	h := crc64.New(crc64.MakeTable(crc64.ECMA))
	fmt.Fprintf(h, "execfault\x00%d\x00%s\x00%d", p.Seed, key, attempt)
	// One seeded draw partitioned by the cumulative rates: at most one
	// fault per dispatch, with exactly the configured marginals.
	u := xrand.New(h.Sum64()).Float64()
	for _, band := range []struct {
		rate float64
		f    ExecFault
	}{
		{p.KillRate, ExecKill},
		{p.HangRate, ExecHang},
		{p.SlowStartRate, ExecSlowStart},
		{p.CorruptRate, ExecCorrupt},
		{p.TruncateRate, ExecTruncate},
	} {
		if u < band.rate {
			return band.f
		}
		u -= band.rate
	}
	return ExecNone
}

// CorruptPayload deterministically flips a byte of a sealed payload
// (never the first 5 header bytes, so the corruption lands where only
// the checksum can catch it). Used by chaos-mode workers on an
// ExecCorrupt draw.
func CorruptPayload(data []byte, key string) []byte {
	if len(data) == 0 {
		return data
	}
	out := append([]byte(nil), data...)
	h := crc64.Checksum([]byte(key), crc64.MakeTable(crc64.ECMA))
	i := len(out) - 1 - int(h%uint64(len(out)/2+1))
	if i < 0 {
		i = len(out) - 1
	}
	out[i] ^= 0x55
	return out
}

// TruncatePayload deterministically cuts a sealed payload short (to
// roughly 60%), simulating a connection dropped mid-reply.
func TruncatePayload(data []byte, key string) []byte {
	if len(data) < 2 {
		return data[:0]
	}
	h := crc64.Checksum([]byte("trunc\x00"+key), crc64.MakeTable(crc64.ECMA))
	n := len(data)*3/5 + int(h%uint64(len(data)/5+1))
	if n >= len(data) {
		n = len(data) - 1
	}
	return append([]byte(nil), data[:n]...)
}
