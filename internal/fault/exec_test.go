package fault

import (
	"testing"
	"time"
)

func TestExecDrawIsPureFunctionOfSeedKeyAttempt(t *testing.T) {
	plan := ExecPlan{Seed: 7, KillRate: 0.3, HangRate: 0.2, SlowStartRate: 0.1,
		CorruptRate: 0.1, TruncateRate: 0.1, FaultAttempts: 2}
	a, err := NewExecInjector(plan)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewExecInjector(plan)
	if err != nil {
		t.Fatal(err)
	}
	keys := []string{"cell/0/a", "cell/1/b", "cell/2/c", "cell/3/d", "cell/4/e"}
	// Draw in different orders from independent injectors (as two
	// worker processes would): every decision must match.
	for _, key := range keys {
		for attempt := 1; attempt <= 3; attempt++ {
			want := a.Draw(key, attempt)
			if got := a.Draw(key, attempt); got != want {
				t.Fatalf("Draw(%q,%d) unstable within one injector: %v then %v", key, attempt, want, got)
			}
			_ = want
		}
	}
	for i := len(keys) - 1; i >= 0; i-- {
		for attempt := 3; attempt >= 1; attempt-- {
			if got, want := b.Draw(keys[i], attempt), a.Draw(keys[i], attempt); got != want {
				t.Fatalf("Draw(%q,%d) differs across injectors: %v vs %v", keys[i], attempt, got, want)
			}
		}
	}
}

func TestExecDrawCleanPastFaultAttempts(t *testing.T) {
	// Rates summing to 1 fault every first attempt; attempt 2+ must be
	// clean so retries terminate.
	in, err := NewExecInjector(ExecPlan{Seed: 1, KillRate: 0.5, HangRate: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	sawFault := false
	for i := 0; i < 20; i++ {
		key := "cell/" + string(rune('a'+i))
		if f := in.Draw(key, 1); f != ExecNone {
			sawFault = true
		}
		if f := in.Draw(key, 2); f != ExecNone {
			t.Fatalf("attempt 2 of %q drew %v, want clean past FaultAttempts", key, f)
		}
	}
	if !sawFault {
		t.Fatal("rates summing to 1 never drew a fault on attempt 1")
	}
	st := in.Stats()
	if st.Kills+st.Hangs == 0 || st.Draws != 40 {
		t.Fatalf("stats = %+v, want 40 draws with kills+hangs > 0", st)
	}
}

func TestExecPlanValidate(t *testing.T) {
	for _, bad := range []ExecPlan{
		{KillRate: -0.1},
		{KillRate: 1.2},
		{KillRate: 0.6, HangRate: 0.6}, // partition overflow
		{SlowStart: -time.Second},
		{FaultAttempts: -1},
	} {
		if err := bad.Validate(); err == nil {
			t.Fatalf("Validate accepted %+v", bad)
		}
	}
	if err := (ExecPlan{KillRate: 0.5, HangRate: 0.3, CorruptRate: 0.2}).Validate(); err != nil {
		t.Fatalf("Validate rejected a full partition: %v", err)
	}
	if !(ExecPlan{Seed: 9, FaultAttempts: 3}).IsZero() {
		t.Fatal("seed and caps alone must still be a zero plan")
	}
}

func TestParseExecPlanRoundTrip(t *testing.T) {
	plan, err := ParseExecPlan("seed=7,kill=0.3,hang=0.1,slow=0.2,corrupt=0.05,truncate=0.05,slow-delay=20ms,attempts=2")
	if err != nil {
		t.Fatal(err)
	}
	want := ExecPlan{Seed: 7, KillRate: 0.3, HangRate: 0.1, SlowStartRate: 0.2,
		CorruptRate: 0.05, TruncateRate: 0.05, SlowStart: 20 * time.Millisecond, FaultAttempts: 2}
	if plan != want {
		t.Fatalf("ParseExecPlan = %+v, want %+v", plan, want)
	}
	// String() output must parse back to the same plan.
	again, err := ParseExecPlan(plan.String())
	if err != nil || again != plan {
		t.Fatalf("String round trip: %+v (%v), want %+v", again, err, plan)
	}
	if p, err := ParseExecPlan("none"); err != nil || !p.IsZero() {
		t.Fatalf(`ParseExecPlan("none") = %+v (%v), want zero`, p, err)
	}
	for _, bad := range []string{"kill", "kill=x", "frobnicate=1", "kill=0.9,hang=0.9"} {
		if _, err := ParseExecPlan(bad); err == nil {
			t.Fatalf("ParseExecPlan accepted %q", bad)
		}
	}
}

func TestCorruptAndTruncatePayload(t *testing.T) {
	data := []byte("ICKP\x01----------------the payload body of a sealed result")
	c := CorruptPayload(data, "cell/0")
	if len(c) != len(data) {
		t.Fatalf("corruption changed length %d -> %d", len(data), len(c))
	}
	diff := 0
	for i := range data {
		if data[i] != c[i] {
			diff++
		}
	}
	if diff != 1 {
		t.Fatalf("corruption flipped %d bytes, want exactly 1", diff)
	}
	if string(CorruptPayload(data, "cell/0")) != string(c) {
		t.Fatal("corruption is not deterministic")
	}
	tr := TruncatePayload(data, "cell/0")
	if len(tr) >= len(data) || len(tr) == 0 {
		t.Fatalf("truncation produced %d of %d bytes", len(tr), len(data))
	}
}
