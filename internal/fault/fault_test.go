package fault

import (
	"reflect"
	"strings"
	"testing"

	"intracache/internal/sim"
)

// fakeMonitors satisfies sim.Monitors for driving an Injector directly.
type fakeMonitors struct{ ways, threads int }

func (m fakeMonitors) MissCurve(int) []uint64 { return nil }
func (m fakeMonitors) Ways() int              { return m.ways }
func (m fakeMonitors) NumThreads() int        { return m.threads }

// recordingController captures every interval it is shown and returns a
// scripted decision per call.
type recordingController struct {
	seen      []sim.IntervalStats
	decisions [][]int
}

func (c *recordingController) OnInterval(iv sim.IntervalStats, mon sim.Monitors) []int {
	cp := iv
	cp.Threads = append([]sim.ThreadIntervalStats(nil), iv.Threads...)
	c.seen = append(c.seen, cp)
	if n := len(c.seen) - 1; n < len(c.decisions) {
		return c.decisions[n]
	}
	return nil
}

func sampleInterval(idx int) sim.IntervalStats {
	return sim.IntervalStats{
		Index: idx,
		Threads: []sim.ThreadIntervalStats{
			{Instructions: 1000, ActiveCycles: 2000, L1Misses: 50, L2Accesses: 40, L2Hits: 30, L2Misses: 10, WaysAssigned: 8},
			{Instructions: 800, ActiveCycles: 4000, L1Misses: 90, L2Accesses: 80, L2Hits: 20, L2Misses: 60, WaysAssigned: 8},
		},
	}
}

func TestDropZeroesSamplesButKeepsWays(t *testing.T) {
	inner := &recordingController{}
	inj, err := NewInjector(Plan{Seed: 3, DropRate: 1}, inner)
	if err != nil {
		t.Fatal(err)
	}
	iv := sampleInterval(0)
	orig := append([]sim.ThreadIntervalStats(nil), iv.Threads...)
	inj.OnInterval(iv, fakeMonitors{16, 2})
	if !reflect.DeepEqual(iv.Threads, orig) {
		t.Fatal("injector mutated the simulator's sample slice")
	}
	got := inner.seen[0]
	for ti, ts := range got.Threads {
		if ts.Instructions != 0 || ts.ActiveCycles != 0 || ts.L2Misses != 0 {
			t.Errorf("thread %d not zeroed: %+v", ti, ts)
		}
		if ts.WaysAssigned != 8 {
			t.Errorf("thread %d lost its way assignment: %d", ti, ts.WaysAssigned)
		}
	}
	if s := inj.Stats(); s.DroppedIntervals != 1 || s.Intervals != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestStuckRepeatsPreviousReport(t *testing.T) {
	inner := &recordingController{}
	inj, err := NewInjector(Plan{Seed: 3, StuckRate: 1}, inner)
	if err != nil {
		t.Fatal(err)
	}
	mon := fakeMonitors{16, 2}
	first := sampleInterval(0)
	inj.OnInterval(first, mon)
	// No previous report exists, so interval 0 passes through untouched.
	if !reflect.DeepEqual(inner.seen[0].Threads, first.Threads) {
		t.Fatalf("first interval perturbed without history: %+v", inner.seen[0].Threads)
	}
	second := sampleInterval(1)
	second.Threads[0].Instructions = 5555
	second.Threads[0].ActiveCycles = 9999
	second.Threads[0].WaysAssigned = 12 // runtime moved ways meanwhile
	inj.OnInterval(second, mon)
	got := inner.seen[1].Threads[0]
	if got.Instructions != first.Threads[0].Instructions || got.ActiveCycles != first.Threads[0].ActiveCycles {
		t.Errorf("stuck sample not repeated: %+v", got)
	}
	if got.WaysAssigned != 12 {
		t.Errorf("stuck sample clobbered the current way assignment: %d", got.WaysAssigned)
	}
	if s := inj.Stats(); s.StuckSamples != 2 {
		t.Errorf("stuck samples = %d, want 2", s.StuckSamples)
	}
}

func TestNoiseBoundedAndCounted(t *testing.T) {
	inner := &recordingController{}
	inj, err := NewInjector(Plan{Seed: 9, CPINoise: 0.25}, inner)
	if err != nil {
		t.Fatal(err)
	}
	mon := fakeMonitors{16, 2}
	for i := 0; i < 50; i++ {
		inj.OnInterval(sampleInterval(i), mon)
	}
	for _, iv := range inner.seen {
		for ti, ts := range iv.Threads {
			truth := sampleInterval(0).Threads[ti].ActiveCycles
			lo := uint64(float64(truth) * 0.74)
			hi := uint64(float64(truth) * 1.26)
			if ts.ActiveCycles < lo || ts.ActiveCycles > hi {
				t.Fatalf("interval %d thread %d: cycles %d outside [%d,%d]",
					iv.Index, ti, ts.ActiveCycles, lo, hi)
			}
			if ts.Instructions != sampleInterval(0).Threads[ti].Instructions {
				t.Fatalf("noise touched instruction counts")
			}
		}
	}
	if s := inj.Stats(); s.NoisySamples != 100 {
		t.Errorf("noisy samples = %d, want 100", s.NoisySamples)
	}
}

func TestDecisionDelayShiftsByK(t *testing.T) {
	const k = 2
	d := [][]int{{8, 8}, {10, 6}, {12, 4}, {9, 7}, {5, 11}}
	inner := &recordingController{decisions: d}
	inj, err := NewInjector(Plan{Seed: 1, DecisionDelay: k}, inner)
	if err != nil {
		t.Fatal(err)
	}
	mon := fakeMonitors{16, 2}
	var got [][]int
	for i := 0; i < len(d)+k; i++ {
		got = append(got, inj.OnInterval(sampleInterval(i), mon))
	}
	for i := 0; i < k; i++ {
		if got[i] != nil {
			t.Errorf("interval %d: decision released before delay: %v", i, got[i])
		}
	}
	for i := range d {
		if !reflect.DeepEqual(got[i+k], d[i]) {
			t.Errorf("interval %d: got %v, want decision %d = %v", i+k, got[i+k], i, d[i])
		}
	}
	if s := inj.Stats(); s.DelayedDecisions != uint64(len(d)) {
		t.Errorf("delayed decisions = %d, want %d", s.DelayedDecisions, len(d))
	}
}

func TestFaultStreamDeterministic(t *testing.T) {
	plan := Plan{Seed: 77, CPINoise: 0.4, DropRate: 0.2, StuckRate: 0.1, StallRate: 0.1}
	run := func() []sim.IntervalStats {
		inner := &recordingController{}
		inj, err := NewInjector(plan, inner)
		if err != nil {
			t.Fatal(err)
		}
		mon := fakeMonitors{16, 2}
		for i := 0; i < 200; i++ {
			inj.OnInterval(sampleInterval(i), mon)
		}
		return inner.seen
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same plan produced different fault streams")
	}
	other := plan
	other.Seed = 78
	inner := &recordingController{}
	inj, _ := NewInjector(other, inner)
	for i := 0; i < 200; i++ {
		inj.OnInterval(sampleInterval(i), fakeMonitors{16, 2})
	}
	if reflect.DeepEqual(a, inner.seen) {
		t.Fatal("different seeds produced identical fault streams")
	}
}

func TestStallInflatesCycles(t *testing.T) {
	inner := &recordingController{}
	inj, err := NewInjector(Plan{Seed: 5, StallRate: 1, StallFactor: 3}, inner)
	if err != nil {
		t.Fatal(err)
	}
	inj.OnInterval(sampleInterval(0), fakeMonitors{16, 2})
	for ti, ts := range inner.seen[0].Threads {
		want := sampleInterval(0).Threads[ti].ActiveCycles * 3
		if ts.ActiveCycles != want {
			t.Errorf("thread %d cycles = %d, want %d", ti, ts.ActiveCycles, want)
		}
	}
	if s := inj.Stats(); s.Stalls != 2 {
		t.Errorf("stalls = %d, want 2", s.Stalls)
	}
}

func TestPlanValidate(t *testing.T) {
	bad := []Plan{
		{DropRate: -0.1},
		{DropRate: 1.5},
		{StuckRate: 2},
		{StallRate: -1},
		{CPINoise: -0.5},
		{CPIAddNoise: -1},
		{DecisionDelay: -1},
		{StallFactor: 0.5, StallRate: 0.1},
	}
	for i, p := range bad {
		if _, err := NewInjector(p, nil); err == nil {
			t.Errorf("plan %d (%+v) accepted", i, p)
		}
	}
	if _, err := NewInjector(Plan{Seed: 1, CPINoise: 0.1, DropRate: 0.05}, nil); err != nil {
		t.Errorf("valid plan rejected: %v", err)
	}
}

func TestPlanZeroAndString(t *testing.T) {
	if !(Plan{Seed: 99}).IsZero() {
		t.Error("seed-only plan should be zero")
	}
	if (Plan{DropRate: 0.1}).IsZero() {
		t.Error("dropping plan reported zero")
	}
	if s := (Plan{}).String(); s != "none" {
		t.Errorf("zero plan string = %q", s)
	}
	s := Plan{CPINoise: 0.1, DropRate: 0.05, DecisionDelay: 2}.String()
	for _, want := range []string{"noise=0.1", "drop=0.05", "delay=2"} {
		if !strings.Contains(s, want) {
			t.Errorf("plan string %q missing %q", s, want)
		}
	}
}

// healthyInner is a controller that reports a health state.
type healthyInner struct{ recordingController }

func (healthyInner) ControllerHealth() string { return "proportional" }

func TestHealthDelegation(t *testing.T) {
	inj, _ := NewInjector(Plan{Seed: 1, DropRate: 0.1}, &healthyInner{})
	if h := inj.ControllerHealth(); h != "proportional" {
		t.Errorf("health = %q", h)
	}
	plain, _ := NewInjector(Plan{Seed: 1, DropRate: 0.1}, &recordingController{})
	if h := plain.ControllerHealth(); h != "" {
		t.Errorf("health without reporter = %q", h)
	}
	nilInner, _ := NewInjector(Plan{Seed: 1, DropRate: 0.1}, nil)
	if h := nilInner.ControllerHealth(); h != "" {
		t.Errorf("health with nil inner = %q", h)
	}
	if out := nilInner.OnInterval(sampleInterval(0), fakeMonitors{16, 2}); out != nil {
		t.Errorf("nil inner returned targets %v", out)
	}
}
