// Package fault injects deterministic, seeded measurement faults into
// the signal path between the simulator and the partitioning runtime.
//
// The paper's runtime steers the partition from per-interval CPI
// readings taken off hardware performance monitors; our simulator
// delivers those readings perfectly. Real counters do not: samples are
// noisy, drop out, stick at stale values, and repartition commands
// reach the configuration unit late. An Injector models exactly that
// degraded telemetry: it sits between the simulator and any
// sim.Controller, perturbing each interval's ThreadIntervalStats before
// the controller sees them and optionally delaying the controller's
// decisions on the way back. Ground truth is untouched — the simulator
// keeps executing and recording real counters — so a run under faults
// measures how much the *controller* suffers from bad inputs, not a
// different machine.
//
// All randomness derives from Plan.Seed through internal/xrand, so a
// given (Plan, workload, config) triple reproduces bit-identically.
package fault

import (
	"fmt"
	"strings"

	"intracache/internal/sim"
	"intracache/internal/xrand"
)

// Plan configures one run's fault injection. The zero value injects
// nothing (see IsZero).
type Plan struct {
	// Seed drives the injector's private RNG stream.
	Seed uint64

	// CPINoise is multiplicative counter noise: each thread's reported
	// ActiveCycles is scaled by 1 + U(-CPINoise, +CPINoise) per
	// interval. 0.1 models ±10% CPI measurement error.
	CPINoise float64
	// CPIAddNoise is additive counter noise: up to CPIAddNoise extra
	// cycles per retired instruction, uniform per interval, are added to
	// the reported ActiveCycles (a biased counter that over-reads).
	CPIAddNoise float64

	// DropRate is the per-interval probability that the whole sample is
	// lost: every thread reports zero instructions and zero cycles, as
	// when a sampling window is missed. Controllers must treat such
	// intervals as "no data", not as "infinitely fast threads".
	DropRate float64

	// StuckRate is the per-thread, per-interval probability that the
	// thread's counters read back the previous interval's values — a
	// stuck register that stopped latching.
	StuckRate float64

	// DecisionDelay applies each repartition decision this many
	// intervals after the controller issued it, modelling a slow
	// configuration path between the runtime system and the cache.
	DecisionDelay int

	// StallRate is the per-thread, per-interval probability of a
	// transient apparent stall: the thread's reported ActiveCycles are
	// inflated by StallFactor, as when an OS preemption or SMM excursion
	// lands inside the sampling window.
	StallRate float64
	// StallFactor is the ActiveCycles multiplier a stall applies
	// (default 4 when zero).
	StallFactor float64
}

// IsZero reports whether the plan injects no faults at all (the seed
// alone does not count).
func (p Plan) IsZero() bool {
	return p.CPINoise == 0 && p.CPIAddNoise == 0 && p.DropRate == 0 &&
		p.StuckRate == 0 && p.DecisionDelay == 0 && p.StallRate == 0
}

// Validate reports whether the plan's parameters are usable.
func (p Plan) Validate() error {
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"DropRate", p.DropRate},
		{"StuckRate", p.StuckRate},
		{"StallRate", p.StallRate},
	} {
		if f.v < 0 || f.v > 1 {
			return fmt.Errorf("fault: %s %v outside [0,1]", f.name, f.v)
		}
	}
	if p.CPINoise < 0 {
		return fmt.Errorf("fault: negative CPINoise %v", p.CPINoise)
	}
	if p.CPIAddNoise < 0 {
		return fmt.Errorf("fault: negative CPIAddNoise %v", p.CPIAddNoise)
	}
	if p.DecisionDelay < 0 {
		return fmt.Errorf("fault: negative DecisionDelay %d", p.DecisionDelay)
	}
	if p.StallFactor != 0 && p.StallFactor < 1 {
		return fmt.Errorf("fault: StallFactor %v below 1", p.StallFactor)
	}
	return nil
}

// String renders the plan's active knobs compactly, for labels.
func (p Plan) String() string {
	if p.IsZero() {
		return "none"
	}
	var parts []string
	add := func(format string, args ...interface{}) {
		parts = append(parts, fmt.Sprintf(format, args...))
	}
	if p.CPINoise > 0 {
		add("noise=%g", p.CPINoise)
	}
	if p.CPIAddNoise > 0 {
		add("add=%g", p.CPIAddNoise)
	}
	if p.DropRate > 0 {
		add("drop=%g", p.DropRate)
	}
	if p.StuckRate > 0 {
		add("stuck=%g", p.StuckRate)
	}
	if p.DecisionDelay > 0 {
		add("delay=%d", p.DecisionDelay)
	}
	if p.StallRate > 0 {
		add("stall=%g", p.StallRate)
	}
	return strings.Join(parts, ",")
}

func (p Plan) stallFactor() float64 {
	if p.StallFactor == 0 {
		return 4
	}
	return p.StallFactor
}

// Stats counts the faults an Injector has fired.
type Stats struct {
	Intervals        uint64 // intervals observed
	DroppedIntervals uint64 // whole-interval sample losses
	StuckSamples     uint64 // per-thread stuck-counter repeats
	NoisySamples     uint64 // per-thread multiplicative noise applications
	Stalls           uint64 // per-thread transient stalls
	DelayedDecisions uint64 // non-nil decisions released late
}

// Injector implements sim.Controller by perturbing interval samples
// according to a Plan and forwarding them to an inner controller. A nil
// inner controller is allowed (telemetry is perturbed into the void and
// no repartitioning ever happens), which keeps wiring uniform for
// policies without a runtime system.
type Injector struct {
	plan  Plan
	inner sim.Controller
	rng   *xrand.Rand

	prev     []sim.ThreadIntervalStats // last *reported* (perturbed) samples
	havePrev bool
	queue    [][]int // pending decisions when DecisionDelay > 0
	stats    Stats
}

// NewInjector builds an injector for the plan around inner.
func NewInjector(plan Plan, inner sim.Controller) (*Injector, error) {
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	// Offset the seed so a workload and its fault stream sharing a seed
	// value do not walk the same xrand sequence.
	return &Injector{plan: plan, inner: inner, rng: xrand.New(plan.Seed ^ 0xfa017_fa017)}, nil
}

// Plan returns the injector's plan.
func (in *Injector) Plan() Plan { return in.plan }

// Stats returns the fault counters accumulated so far.
func (in *Injector) Stats() Stats { return in.stats }

// Perturb applies the plan's telemetry faults to one interval's
// samples and returns the perturbed copy, advancing the injector's RNG
// stream and sample memory exactly as a controller-wrapped injection
// would. The input is never mutated (the Threads slice may be shared
// with recorded ground truth). Callers that feed telemetry to an
// external consumer — the partitiond load generator tainting the
// streams it POSTs — use this directly; OnInterval builds on it.
func (in *Injector) Perturb(iv sim.IntervalStats) sim.IntervalStats {
	in.stats.Intervals++
	if in.prev == nil {
		in.prev = make([]sim.ThreadIntervalStats, len(iv.Threads))
	}
	perturbed := iv
	perturbed.Threads = append([]sim.ThreadIntervalStats(nil), iv.Threads...)

	if in.plan.DropRate > 0 && in.rng.Bool(in.plan.DropRate) {
		in.stats.DroppedIntervals++
		for t := range perturbed.Threads {
			ways := perturbed.Threads[t].WaysAssigned
			perturbed.Threads[t] = sim.ThreadIntervalStats{WaysAssigned: ways}
		}
	} else {
		for t := range perturbed.Threads {
			in.perturbThread(&perturbed.Threads[t], t)
		}
	}
	for t := range perturbed.Threads {
		in.prev[t] = perturbed.Threads[t]
	}
	in.havePrev = true
	return perturbed
}

// OnInterval implements sim.Controller: perturb, forward, delay.
func (in *Injector) OnInterval(iv sim.IntervalStats, mon sim.Monitors) []int {
	perturbed := in.Perturb(iv)

	var targets []int
	if in.inner != nil {
		targets = in.inner.OnInterval(perturbed, mon)
	}
	if in.plan.DecisionDelay <= 0 {
		return targets
	}
	in.queue = append(in.queue, targets)
	if len(in.queue) <= in.plan.DecisionDelay {
		return nil
	}
	out := in.queue[0]
	in.queue = in.queue[1:]
	if out != nil {
		in.stats.DelayedDecisions++
	}
	return out
}

// perturbThread applies the per-thread fault draws to one sample. The
// draw order is fixed (stuck, noise, additive, stall) so a plan's fault
// stream is reproducible.
func (in *Injector) perturbThread(ts *sim.ThreadIntervalStats, t int) {
	if in.plan.StuckRate > 0 && in.havePrev && in.rng.Bool(in.plan.StuckRate) {
		// A stuck counter repeats the last values it latched; the way
		// assignment is runtime-side knowledge, not a counter, and stays
		// current.
		ways := ts.WaysAssigned
		*ts = in.prev[t]
		ts.WaysAssigned = ways
		in.stats.StuckSamples++
		return
	}
	if in.plan.CPINoise > 0 {
		f := 1 + (2*in.rng.Float64()-1)*in.plan.CPINoise
		if f < 0.05 {
			f = 0.05 // a counter cannot under-read below a sliver of truth
		}
		ts.ActiveCycles = uint64(float64(ts.ActiveCycles) * f)
		in.stats.NoisySamples++
	}
	if in.plan.CPIAddNoise > 0 {
		ts.ActiveCycles += uint64(in.rng.Float64() * in.plan.CPIAddNoise * float64(ts.Instructions))
	}
	if in.plan.StallRate > 0 && in.rng.Bool(in.plan.StallRate) {
		ts.ActiveCycles = uint64(float64(ts.ActiveCycles) * in.plan.stallFactor())
		in.stats.Stalls++
	}
}

// ControllerHealth implements sim.HealthReporter by delegating to the
// inner controller, so the injector is transparent to health reporting.
func (in *Injector) ControllerHealth() string {
	if h, ok := in.inner.(sim.HealthReporter); ok {
		return h.ControllerHealth()
	}
	return ""
}
