package fault

import (
	"strings"
	"testing"
	"time"
)

// TestParseExecPlanErrorPaths walks every knob's parse-failure branch
// plus the post-parse Validate rejections the round-trip test does not
// reach: each bad input must name the offending knob in its error.
func TestParseExecPlanErrorPaths(t *testing.T) {
	cases := []struct {
		in   string
		want string // substring the error must carry
	}{
		{"seed=abc", "seed"},
		{"seed=-1", "seed"},
		{"seed=1.5", "seed"},
		{"hang=x", "hang"},
		{"slow=,kill=0.1", "slow"},
		{"corrupt=many", "corrupt"},
		{"truncate=", "truncate"},
		{"slow-delay=xyz", "slow-delay"},
		{"slow-delay=10", "slow-delay"}, // duration needs a unit
		{"attempts=1.5", "attempts"},
		{"attempts=two", "attempts"},
		{"=0.5", `""`},               // empty key
		{"kill=0.5,,hang=0.1", `""`}, // empty field
		// Parsed fine, rejected by Validate.
		{"kill=-0.2", "KillRate"},
		{"truncate=2", "TruncateRate"},
		{"slow-delay=-5ms", "SlowStart"},
		{"attempts=-1", "FaultAttempts"},
		{"kill=0.4,hang=0.4,slow=0.4", "sum"},
	}
	for _, tc := range cases {
		_, err := ParseExecPlan(tc.in)
		if err == nil {
			t.Errorf("ParseExecPlan(%q) accepted", tc.in)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("ParseExecPlan(%q) error %q does not mention %q", tc.in, err, tc.want)
		}
	}
}

// TestExecPlanStringParseRoundTripVariants pins String/Parse stability
// for plans the existing round-trip test misses: sparse plans (one
// knob), plans with non-default delay/attempts but no matching rates,
// and whitespace-tolerant parsing.
func TestExecPlanStringParseRoundTripVariants(t *testing.T) {
	plans := []ExecPlan{
		{Seed: 1, KillRate: 0.25},
		{TruncateRate: 1},
		{Seed: 42, SlowStartRate: 0.5, SlowStart: 3 * time.Second},
		{Seed: 9, CorruptRate: 0.125, FaultAttempts: 7},
	}
	for _, p := range plans {
		again, err := ParseExecPlan(p.String())
		if err != nil {
			t.Errorf("ParseExecPlan(%q): %v", p.String(), err)
			continue
		}
		if again != p {
			t.Errorf("round trip of %q: %+v, want %+v", p.String(), again, p)
		}
	}
	// The zero plan renders "none", which parses back to zero.
	if got := (ExecPlan{}).String(); got != "none" {
		t.Errorf(`zero plan String() = %q, want "none"`, got)
	}
	// Whitespace around fields is tolerated (shell-quoted flags).
	p, err := ParseExecPlan(" seed=3 , kill=0.5 ")
	if err != nil || p.Seed != 3 || p.KillRate != 0.5 {
		t.Errorf("whitespace parse: %+v (%v)", p, err)
	}
	if q, err := ParseExecPlan("   "); err != nil || !q.IsZero() {
		t.Errorf("blank spec: %+v (%v), want zero plan", q, err)
	}
}

// TestCorruptPayloadDegenerateSizes pins the documented behaviour on
// payloads too small to carry a header: empty input is returned
// unchanged (there is nothing to flip), and a 1-byte payload still
// gets exactly one deterministic flip.
func TestCorruptPayloadDegenerateSizes(t *testing.T) {
	if got := CorruptPayload(nil, "k"); len(got) != 0 {
		t.Fatalf("CorruptPayload(nil) = %v, want empty", got)
	}
	if got := CorruptPayload([]byte{}, "k"); len(got) != 0 {
		t.Fatalf("CorruptPayload(empty) = %v, want empty", got)
	}
	one := []byte{0xAA}
	c := CorruptPayload(one, "k")
	if len(c) != 1 || c[0] == 0xAA {
		t.Fatalf("CorruptPayload(1 byte) = %v, want one flipped byte", c)
	}
	if one[0] != 0xAA {
		t.Fatal("CorruptPayload mutated its input")
	}
	if c2 := CorruptPayload(one, "k"); c2[0] != c[0] {
		t.Fatal("1-byte corruption is not deterministic")
	}
	// Different keys may flip different bytes on longer payloads, but
	// every key must flip exactly one byte.
	data := []byte("ICKP\x01 payload")
	for _, key := range []string{"a", "b", "cell/42"} {
		c := CorruptPayload(data, key)
		diff := 0
		for i := range data {
			if c[i] != data[i] {
				diff++
			}
		}
		if diff != 1 {
			t.Fatalf("key %q flipped %d bytes, want 1", key, diff)
		}
	}
}

// TestTruncatePayloadDegenerateSizes pins the small-payload contract:
// inputs shorter than 2 bytes truncate to empty (never negative, never
// unchanged), everything else loses at least one byte, and the input
// is never mutated.
func TestTruncatePayloadDegenerateSizes(t *testing.T) {
	if got := TruncatePayload(nil, "k"); len(got) != 0 {
		t.Fatalf("TruncatePayload(nil) = %v, want empty", got)
	}
	if got := TruncatePayload([]byte{}, "k"); len(got) != 0 {
		t.Fatalf("TruncatePayload(empty) = %v, want empty", got)
	}
	one := []byte{0x7F}
	if got := TruncatePayload(one, "k"); len(got) != 0 {
		t.Fatalf("TruncatePayload(1 byte) = %v, want empty", got)
	}
	if one[0] != 0x7F {
		t.Fatal("TruncatePayload mutated its input")
	}
	two := []byte{1, 2}
	tr := TruncatePayload(two, "k")
	if len(tr) >= 2 {
		t.Fatalf("TruncatePayload(2 bytes) kept %d bytes, want < 2", len(tr))
	}
	// Determinism across calls, for every small size.
	for n := 2; n <= 8; n++ {
		data := make([]byte, n)
		for i := range data {
			data[i] = byte(i)
		}
		a, b := TruncatePayload(data, "cell"), TruncatePayload(data, "cell")
		if string(a) != string(b) {
			t.Fatalf("truncation of %d bytes is not deterministic", n)
		}
		if len(a) >= n {
			t.Fatalf("truncation of %d bytes kept %d", n, len(a))
		}
	}
}
