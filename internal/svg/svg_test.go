package svg

import (
	"encoding/xml"
	"strings"
	"testing"
	"testing/quick"
)

// wellFormed parses the document with encoding/xml, so unescaped
// characters or unbalanced tags fail the test.
func wellFormed(t *testing.T, doc string) {
	t.Helper()
	dec := xml.NewDecoder(strings.NewReader(doc))
	for {
		_, err := dec.Token()
		if err != nil {
			if err.Error() == "EOF" {
				return
			}
			t.Fatalf("malformed SVG: %v\n%s", err, doc)
		}
	}
}

func TestHBarsWellFormed(t *testing.T) {
	doc := HBars("improvements <&\"'>", []string{"swim", "c<g>"}, []float64{5, 10}, 640)
	wellFormed(t, doc)
	if !strings.Contains(doc, "&lt;&amp;&quot;&apos;&gt;") {
		t.Error("special characters not escaped in title")
	}
	if !strings.HasPrefix(doc, "<svg") || !strings.HasSuffix(doc, "</svg>\n") {
		t.Error("document not wrapped in <svg>")
	}
	if strings.Count(doc, "<rect") < 3 { // background + 2 bars
		t.Error("bars missing")
	}
}

func TestHBarsNegativeValues(t *testing.T) {
	doc := HBars("t", []string{"a", "b"}, []float64{-5, 10}, 640)
	wellFormed(t, doc)
	// No negative-width rects may survive (SVG forbids them).
	if strings.Contains(doc, `width="-`) {
		t.Error("negative rect width emitted")
	}
	if !strings.Contains(doc, "-5.00") {
		t.Error("negative value label missing")
	}
}

func TestHBarsAllZero(t *testing.T) {
	wellFormed(t, HBars("t", []string{"a"}, []float64{0}, 400))
}

func TestGroupedHBarsWellFormed(t *testing.T) {
	doc := GroupedHBars("fig3", []string{"swim", "cg"}, []string{"t1", "t2"},
		[][]float64{{1, 0.5}, {0.8, 0.2}}, 640)
	wellFormed(t, doc)
	for _, want := range []string{"swim", "cg", "t1", "t2", "0.500"} {
		if !strings.Contains(doc, want) {
			t.Errorf("missing %q", want)
		}
	}
}

func TestGroupedHBarsRagged(t *testing.T) {
	// More labels than groups, more bars than series names.
	doc := GroupedHBars("t", []string{"a", "b"}, []string{"s"}, [][]float64{{1, 2}}, 640)
	wellFormed(t, doc)
}

func TestLinesWellFormed(t *testing.T) {
	doc := Lines("fig6", []string{"thread 1", "thread 2"},
		[][]float64{{1, 2, 3, 2}, {3, 2, 1, 2}}, 800, 300)
	wellFormed(t, doc)
	if strings.Count(doc, "<polyline") != 2 {
		t.Errorf("polyline count wrong:\n%s", doc)
	}
	if !strings.Contains(doc, "thread 1") {
		t.Error("legend missing")
	}
}

func TestLinesDegenerate(t *testing.T) {
	wellFormed(t, Lines("empty", nil, nil, 400, 200))
	wellFormed(t, Lines("flat", []string{"s"}, [][]float64{{5, 5, 5}}, 400, 200))
	wellFormed(t, Lines("single", []string{"s"}, [][]float64{{7}}, 400, 200))
}

func TestColorCycles(t *testing.T) {
	if Color(0) == "" || Color(0) != Color(len(palette)) {
		t.Error("palette does not cycle")
	}
}

// Property: any label/value combination renders a well-formed document.
func TestQuickHBarsAlwaysWellFormed(t *testing.T) {
	f := func(labels []string, raw []int16) bool {
		values := make([]float64, len(raw))
		for i, v := range raw {
			values[i] = float64(v) / 7
		}
		doc := HBars("t<>&", labels, values, 640)
		dec := xml.NewDecoder(strings.NewReader(doc))
		for {
			if _, err := dec.Token(); err != nil {
				return err.Error() == "EOF"
			}
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
