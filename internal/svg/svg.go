// Package svg renders the evaluation's charts as standalone SVG
// documents (stdlib only — the documents are built as escaped XML
// text). cmd/figures uses it behind the -svg flag to write visual
// versions of the paper's figures next to the text renderings.
//
// The renderers mirror internal/report's data shapes: horizontal bar
// charts for the per-benchmark comparisons (Figs. 5, 8, 19-22), grouped
// bars for per-thread breakdowns (Figs. 3/4), and line charts for
// per-interval series and model curves (Figs. 6/7/15).
package svg

import (
	"fmt"
	"math"
	"strings"
)

// palette is a small colour cycle for series; chosen for contrast on a
// white background.
var palette = []string{
	"#4878d0", "#ee854a", "#6acc64", "#d65f5f",
	"#956cb4", "#8c613c", "#dc7ec0", "#797979",
}

// Color returns the i-th palette colour (cycling).
func Color(i int) string { return palette[i%len(palette)] }

// esc escapes text for XML content and attribute values, and replaces
// characters that XML 1.0 forbids outright (control characters,
// surrogates, invalid UTF-8) with U+FFFD — escaping alone cannot make
// those legal.
func esc(s string) string {
	var b strings.Builder
	for _, r := range s {
		switch {
		case r == '&':
			b.WriteString("&amp;")
		case r == '<':
			b.WriteString("&lt;")
		case r == '>':
			b.WriteString("&gt;")
		case r == '"':
			b.WriteString("&quot;")
		case r == '\'':
			b.WriteString("&apos;")
		case r == '\t' || r == '\n' || r == '\r':
			b.WriteRune(r)
		case r < 0x20 || (r >= 0xD800 && r <= 0xDFFF) || r == 0xFFFE || r == 0xFFFF:
			b.WriteRune('�')
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// doc accumulates SVG elements.
type doc struct {
	w, h int
	b    strings.Builder
}

func newDoc(w, h int) *doc {
	d := &doc{w: w, h: h}
	fmt.Fprintf(&d.b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`,
		w, h, w, h)
	d.b.WriteString("\n")
	fmt.Fprintf(&d.b, `<rect width="%d" height="%d" fill="white"/>`, w, h)
	d.b.WriteString("\n")
	return d
}

func (d *doc) rect(x, y, w, h float64, fill string) {
	if w < 0 {
		x, w = x+w, -w
	}
	fmt.Fprintf(&d.b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s"/>`,
		x, y, w, h, fill)
	d.b.WriteString("\n")
}

func (d *doc) line(x1, y1, x2, y2 float64, stroke string, width float64) {
	fmt.Fprintf(&d.b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s" stroke-width="%.1f"/>`,
		x1, y1, x2, y2, stroke, width)
	d.b.WriteString("\n")
}

// anchor: "start", "middle" or "end".
func (d *doc) text(x, y float64, size int, anchor, fill, s string) {
	fmt.Fprintf(&d.b,
		`<text x="%.1f" y="%.1f" font-family="sans-serif" font-size="%d" text-anchor="%s" fill="%s">%s</text>`,
		x, y, size, anchor, fill, esc(s))
	d.b.WriteString("\n")
}

func (d *doc) polyline(points []float64, stroke string, width float64) {
	var pts strings.Builder
	for i := 0; i+1 < len(points); i += 2 {
		if i > 0 {
			pts.WriteByte(' ')
		}
		fmt.Fprintf(&pts, "%.1f,%.1f", points[i], points[i+1])
	}
	fmt.Fprintf(&d.b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="%.1f"/>`,
		pts.String(), stroke, width)
	d.b.WriteString("\n")
}

func (d *doc) String() string {
	return d.b.String() + "</svg>\n"
}

// layout constants shared by the renderers.
const (
	titleSize  = 14
	labelSize  = 11
	marginTop  = 34
	marginLeft = 120
	marginEnd  = 70
)

// HBars renders a horizontal bar chart: one labelled bar per value.
// Negative values render left of a zero axis.
func HBars(title string, labels []string, values []float64, width int) string {
	rowH := 22.0
	height := marginTop + int(rowH)*len(values) + 16
	d := newDoc(width, height)
	d.text(8, 20, titleSize, "start", "black", title)

	var maxAbs float64
	for _, v := range values {
		if a := math.Abs(v); a > maxAbs {
			maxAbs = a
		}
	}
	if maxAbs == 0 {
		maxAbs = 1
	}
	plotW := float64(width - marginLeft - marginEnd)
	hasNeg := false
	for _, v := range values {
		if v < 0 {
			hasNeg = true
		}
	}
	zeroX := float64(marginLeft)
	scale := plotW / maxAbs
	if hasNeg {
		zeroX = float64(marginLeft) + plotW/2
		scale = plotW / (2 * maxAbs)
	}
	// Zero axis.
	d.line(zeroX, marginTop, zeroX, float64(height-10), "#cccccc", 1)
	for i, v := range values {
		y := float64(marginTop) + rowH*float64(i)
		label := ""
		if i < len(labels) {
			label = labels[i]
		}
		d.text(float64(marginLeft)-8, y+rowH*0.7, labelSize, "end", "black", label)
		d.rect(zeroX, y+3, v*scale, rowH-8, Color(0))
		valX := zeroX + v*scale + 6
		anchor := "start"
		if v < 0 {
			valX = zeroX + v*scale - 6
			anchor = "end"
		}
		d.text(valX, y+rowH*0.7, labelSize, anchor, "#444444", fmt.Sprintf("%.2f", v))
	}
	return d.String()
}

// GroupedHBars renders one group of bars per label, one bar per series
// (the Fig. 3/4 shape).
func GroupedHBars(title string, labels, seriesNames []string, values [][]float64, width int) string {
	barH, gapH := 13.0, 8.0
	rows := 0
	for _, g := range values {
		rows += len(g)
	}
	height := marginTop + int(barH)*rows + int(gapH+14)*len(labels) + 16
	d := newDoc(width, height)
	d.text(8, 20, titleSize, "start", "black", title)

	var maxAbs float64
	for _, g := range values {
		for _, v := range g {
			if a := math.Abs(v); a > maxAbs {
				maxAbs = a
			}
		}
	}
	if maxAbs == 0 {
		maxAbs = 1
	}
	plotW := float64(width - marginLeft - marginEnd)
	y := float64(marginTop)
	for gi, label := range labels {
		d.text(8, y+11, labelSize+1, "start", "black", label)
		y += 16
		if gi >= len(values) {
			continue
		}
		for si, v := range values[gi] {
			name := ""
			if si < len(seriesNames) {
				name = seriesNames[si]
			}
			d.text(float64(marginLeft)-8, y+barH*0.8, labelSize-1, "end", "#555555", name)
			d.rect(float64(marginLeft), y+1, v/maxAbs*plotW, barH-3, Color(si))
			d.text(float64(marginLeft)+v/maxAbs*plotW+6, y+barH*0.8, labelSize-1, "start", "#444444",
				fmt.Sprintf("%.3f", v))
			y += barH
		}
		y += gapH
	}
	return d.String()
}

// Lines renders one polyline per series over a shared x axis of
// evenly-spaced points (the per-interval figures).
func Lines(title string, seriesNames []string, series [][]float64, width, height int) string {
	d := newDoc(width, height)
	d.text(8, 20, titleSize, "start", "black", title)

	lo, hi := math.Inf(1), math.Inf(-1)
	maxLen := 0
	for _, s := range series {
		for _, v := range s {
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
		if len(s) > maxLen {
			maxLen = len(s)
		}
	}
	if maxLen == 0 || math.IsInf(lo, 1) {
		return d.String()
	}
	if hi == lo {
		hi = lo + 1
	}
	left, right, top, bottom := 60.0, 20.0, float64(marginTop), 28.0
	plotW := float64(width) - left - right
	plotH := float64(height) - top - bottom

	// Axes and range labels.
	d.line(left, top, left, top+plotH, "#888888", 1)
	d.line(left, top+plotH, left+plotW, top+plotH, "#888888", 1)
	d.text(left-6, top+8, labelSize-1, "end", "#555555", fmt.Sprintf("%.3g", hi))
	d.text(left-6, top+plotH, labelSize-1, "end", "#555555", fmt.Sprintf("%.3g", lo))
	d.text(left+plotW, top+plotH+16, labelSize-1, "end", "#555555", fmt.Sprintf("interval %d", maxLen-1))

	for si, s := range series {
		if len(s) == 0 {
			continue
		}
		pts := make([]float64, 0, len(s)*2)
		for i, v := range s {
			x := left
			if maxLen > 1 {
				x = left + plotW*float64(i)/float64(maxLen-1)
			}
			yy := top + plotH*(1-(v-lo)/(hi-lo))
			pts = append(pts, x, yy)
		}
		d.polyline(pts, Color(si), 1.6)
		name := ""
		if si < len(seriesNames) {
			name = seriesNames[si]
		}
		// Legend: stacked top-right.
		ly := top + 14*float64(si)
		d.line(left+plotW-70, ly, left+plotW-52, ly, Color(si), 3)
		d.text(left+plotW-46, ly+4, labelSize-1, "start", "#333333", name)
	}
	return d.String()
}
