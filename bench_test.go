package intracache

// This file holds one testing.B benchmark per table/figure of the
// paper's evaluation (see DESIGN.md §4 for the index) plus the ablation
// benchmarks DESIGN.md §5 calls out. Each benchmark executes the
// corresponding experiment at a reduced-but-meaningful scale and
// reports the figure's headline quantity through b.ReportMetric, so
// `go test -bench=. -benchmem` regenerates the whole evaluation's
// numbers alongside the usual time/allocation costs.

import (
	"context"
	"testing"

	"intracache/internal/core"
	"intracache/internal/experiment"
	"intracache/internal/spline"
	"intracache/internal/workload"
)

// benchCfg is the shared benchmark scale: large enough that the
// partitioner converges and the paper shapes appear, small enough that
// the full suite finishes in a few minutes.
func benchCfg() experiment.Config {
	cfg := experiment.DefaultConfig()
	cfg.IntervalInstructions = 120_000
	cfg.SectionInstructions = 24_000
	cfg.Intervals = 30
	cfg.Sections = 30
	return cfg
}

func BenchmarkFig02Config(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := benchCfg().Validate(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig03ThreadPerformance(b *testing.B) {
	cfg := benchCfg()
	var spread float64
	for i := 0; i < b.N; i++ {
		series, err := experiment.Fig3ThreadPerformance(cfg)
		if err != nil {
			b.Fatal(err)
		}
		// Headline: the mean slowest/fastest ratio across benchmarks.
		var sum float64
		for _, s := range series {
			lo := s.Values[0]
			for _, v := range s.Values {
				if v < lo {
					lo = v
				}
			}
			sum += lo
		}
		spread = sum / float64(len(series))
	}
	b.ReportMetric(spread, "minPerf/maxPerf")
}

func BenchmarkFig04ThreadMisses(b *testing.B) {
	cfg := benchCfg()
	var spread float64
	for i := 0; i < b.N; i++ {
		series, err := experiment.Fig4ThreadMisses(cfg)
		if err != nil {
			b.Fatal(err)
		}
		var sum float64
		for _, s := range series {
			lo := s.Values[0]
			for _, v := range s.Values {
				if v < lo {
					lo = v
				}
			}
			sum += lo
		}
		spread = sum / float64(len(series))
	}
	b.ReportMetric(spread, "minMiss/maxMiss")
}

func BenchmarkFig05Correlation(b *testing.B) {
	cfg := benchCfg()
	var avg float64
	for i := 0; i < b.N; i++ {
		_, a, err := experiment.Fig5Correlation(cfg)
		if err != nil {
			b.Fatal(err)
		}
		avg = a
	}
	b.ReportMetric(avg, "avgPearsonR")
}

func BenchmarkFig06SwimPhases(b *testing.B) {
	cfg := benchCfg()
	var cv float64
	for i := 0; i < b.N; i++ {
		series, err := experiment.Fig6SwimPhases(cfg)
		if err != nil {
			b.Fatal(err)
		}
		// Headline: coefficient of variation of the phase thread's IPC.
		vals := series.Threads[0][2:]
		var sum, sumsq float64
		for _, v := range vals {
			sum += v
			sumsq += v * v
		}
		mean := sum / float64(len(vals))
		variance := sumsq/float64(len(vals)) - mean*mean
		if mean > 0 && variance > 0 {
			cv = variance / (mean * mean)
		}
	}
	b.ReportMetric(cv, "phaseCV2")
}

func BenchmarkFig07SwimMisses(b *testing.B) {
	cfg := benchCfg()
	var idx float64
	for i := 0; i < b.N; i++ {
		_, variable, err := experiment.Fig7SwimMisses(cfg)
		if err != nil {
			b.Fatal(err)
		}
		idx = float64(variable)
	}
	b.ReportMetric(idx, "variableThread")
}

func BenchmarkFig08InterThread(b *testing.B) {
	cfg := benchCfg()
	var avg float64
	for i := 0; i < b.N; i++ {
		_, a, err := experiment.Fig8And9Interaction(cfg)
		if err != nil {
			b.Fatal(err)
		}
		avg = a
	}
	b.ReportMetric(avg, "avgInterThread%")
}

func BenchmarkFig09ConstructiveSplit(b *testing.B) {
	cfg := benchCfg()
	var avg float64
	for i := 0; i < b.N; i++ {
		stats9, _, err := experiment.Fig8And9Interaction(cfg)
		if err != nil {
			b.Fatal(err)
		}
		var sum float64
		for _, s := range stats9 {
			sum += s.ConstructivePct
		}
		avg = sum / float64(len(stats9))
	}
	b.ReportMetric(avg, "avgConstructive%")
}

func BenchmarkFig10WaySensitivity(b *testing.B) {
	cfg := benchCfg()
	var gap float64
	for i := 0; i < b.N; i++ {
		ws, err := experiment.Fig10WaySensitivity(cfg)
		if err != nil {
			b.Fatal(err)
		}
		maxDrop, minDrop := ws[0].DropPct, ws[0].DropPct
		for _, w := range ws {
			if w.DropPct > maxDrop {
				maxDrop = w.DropPct
			}
			if w.DropPct < minDrop {
				minDrop = w.DropPct
			}
		}
		gap = maxDrop - minDrop
	}
	b.ReportMetric(gap, "sensitivityGapPP")
}

func BenchmarkFig15SplineModels(b *testing.B) {
	cfg := benchCfg()
	var points float64
	for i := 0; i < b.N; i++ {
		curves, _, err := experiment.Fig15Models(cfg, "cg")
		if err != nil {
			b.Fatal(err)
		}
		n := 0
		for _, c := range curves {
			n += len(c.Ways)
		}
		points = float64(n)
	}
	b.ReportMetric(points, "modelPoints")
}

func BenchmarkFig18Snapshot(b *testing.B) {
	cfg := benchCfg()
	var drop float64
	for i := 0; i < b.N; i++ {
		rows, err := experiment.Fig18Snapshot(cfg, 4)
		if err != nil {
			b.Fatal(err)
		}
		// Headline: overall CPI reduction from interval 1 to 4.
		first, last := rows[0].OverallCPI, rows[len(rows)-1].OverallCPI
		if first > 0 {
			drop = 100 * (first - last) / first
		}
	}
	b.ReportMetric(drop, "overallCPIdrop%")
}

func reportComparison(b *testing.B, cs []experiment.Comparison) {
	b.Helper()
	b.ReportMetric(experiment.MeanImprovement(cs), "meanImprove%")
	b.ReportMetric(experiment.MaxImprovement(cs), "maxImprove%")
}

func BenchmarkFig19VsPrivate(b *testing.B) {
	cfg := benchCfg()
	var cs []experiment.Comparison
	for i := 0; i < b.N; i++ {
		var err error
		cs, err = experiment.Fig19VsPrivate(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportComparison(b, cs)
}

// BenchmarkFig19Parallel is BenchmarkFig19VsPrivate with each thread's
// trace generated on a 4-goroutine substream worker pool. Results are
// byte-identical to the sequential figure, so the pair measures the
// parallel-generation speedup on this machine (the shared trace cache
// is flushed every iteration to time cold generation, not replay).
func BenchmarkFig19Parallel(b *testing.B) {
	cfg := benchCfg()
	cfg.ParallelGen = 4
	var cs []experiment.Comparison
	for i := 0; i < b.N; i++ {
		experiment.FlushTraceCache()
		var err error
		cs, err = experiment.Fig19VsPrivate(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportComparison(b, cs)
}

func BenchmarkFig20VsShared(b *testing.B) {
	cfg := benchCfg()
	var cs []experiment.Comparison
	for i := 0; i < b.N; i++ {
		var err error
		cs, err = experiment.Fig20VsShared(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportComparison(b, cs)
}

func BenchmarkFig21VsThroughput(b *testing.B) {
	cfg := benchCfg()
	var cs []experiment.Comparison
	for i := 0; i < b.N; i++ {
		var err error
		cs, err = experiment.Fig21VsThroughput(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportComparison(b, cs)
}

func BenchmarkFig22EightCore(b *testing.B) {
	cfg := benchCfg()
	cfg.Sections = 20
	var res experiment.EightCoreResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiment.Fig22EightCore(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(experiment.MeanImprovement(res.VsPrivate), "meanVsPrivate%")
	b.ReportMetric(experiment.MeanImprovement(res.VsShared), "meanVsShared%")
}

// --- Sweep pipeline benchmarks (DESIGN.md §5g) ---

// sweepBenchPoints is a three-cell L2-associativity sweep over one
// workload. Associativity does not perturb the instruction streams, so
// with Pipeline set the cells share generated segments through the
// process-wide trace cache.
func sweepBenchPoints(pipeline bool) []experiment.SweepPoint {
	var points []experiment.SweepPoint
	for _, ways := range []int{16, 32, 64} {
		cfg := benchCfg()
		cfg.Sections = 12
		cfg.L2Ways = ways
		cfg.Pipeline = pipeline
		points = append(points, experiment.SweepPoint{Label: "l2ways-" + itoa(uint64(ways)), Cfg: cfg})
	}
	return points
}

// BenchmarkSweepSynchronous and BenchmarkSweepPipelined time the same
// multi-cell sweep with trace generation paid per cell vs once per
// sweep. The pipelined variant flushes the shared trace cache every
// iteration so each iteration measures a cold sweep, not a warmed one.
func BenchmarkSweepSynchronous(b *testing.B) {
	points := sweepBenchPoints(false)
	for i := 0; i < b.N; i++ {
		if _, err := experiment.Sweep(points, "cg", core.PolicyShared, core.PolicyModelBased, 2); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSweepPipelined(b *testing.B) {
	points := sweepBenchPoints(true)
	for i := 0; i < b.N; i++ {
		experiment.FlushTraceCache()
		if _, err := experiment.Sweep(points, "cg", core.PolicyShared, core.PolicyModelBased, 2); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSweepSharded times the same sweep with every cell's runs
// split into 4 time shards simulated in parallel. Sharding changes the
// cells' Results (each shard starts from a synthesized cold state), so
// this is a throughput benchmark of the sharded driver, not a
// differential check — those live in internal/experiment/shard_test.go.
func BenchmarkSweepSharded(b *testing.B) {
	points := sweepBenchPoints(false)
	opts := experiment.SweepOptions{Workers: 2, Shards: 4}
	for i := 0; i < b.N; i++ {
		if _, err := experiment.SweepJournaled(context.Background(), points, "cg",
			core.PolicyShared, core.PolicyModelBased, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAccessSets and BenchmarkAccessClusterWays put the two
// non-way partitioning geometries' access hot paths in the bench gate:
// each iteration is one full model-based cg run on that geometry (the
// ways path is already exercised by every figure benchmark). The
// reported CPI doubles as a determinism canary — the gate diffs times,
// but a CPI shift here means the geometry's behaviour moved.
func benchMechanismAccess(b *testing.B, m Mechanism) {
	cfg := benchCfg()
	cfg.Mechanism = m
	var cpi float64
	for i := 0; i < b.N; i++ {
		run, err := Simulate(cfg, "cg", PolicyModelBased, BySections)
		if err != nil {
			b.Fatal(err)
		}
		cpi = run.Result.AppCPI()
	}
	b.ReportMetric(cpi, "appCPI")
}

func BenchmarkAccessSets(b *testing.B)        { benchMechanismAccess(b, MechSets) }
func BenchmarkAccessClusterWays(b *testing.B) { benchMechanismAccess(b, MechCluster) }

// --- Ablation benchmarks (DESIGN.md §5) ---

// BenchmarkAblationIntervalLength varies the execution-interval length.
// The paper reports little sensitivity to it.
func BenchmarkAblationIntervalLength(b *testing.B) {
	prof, err := workload.ByName("cg")
	if err != nil {
		b.Fatal(err)
	}
	for _, ivLen := range []uint64{60_000, 120_000, 240_000, 480_000} {
		b.Run(byteCount(ivLen), func(b *testing.B) {
			cfg := benchCfg()
			cfg.IntervalInstructions = ivLen
			var imp float64
			for i := 0; i < b.N; i++ {
				c, err := experiment.Compare(cfg, prof, core.PolicyShared, core.PolicyModelBased)
				if err != nil {
					b.Fatal(err)
				}
				imp = c.ImprovementPct
			}
			b.ReportMetric(imp, "improveVsShared%")
		})
	}
}

func byteCount(n uint64) string {
	switch {
	case n >= 1_000_000:
		return "interval-" + itoa(n/1_000_000) + "M"
	case n >= 1_000:
		return "interval-" + itoa(n/1_000) + "k"
	default:
		return "interval-" + itoa(n)
	}
}

func itoa(n uint64) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// BenchmarkAblationCPIvsModel compares the paper's two dynamic schemes:
// the naive CPI-proportional rule (Sec. VI-A) against the model-based
// scheme (Sec. VI-B). The paper evaluates only the model-based variant
// because it won everywhere.
func BenchmarkAblationCPIvsModel(b *testing.B) {
	for _, pol := range []core.Policy{core.PolicyCPIProportional, core.PolicyModelBased} {
		b.Run(pol.String(), func(b *testing.B) {
			cfg := benchCfg()
			var mean float64
			for i := 0; i < b.N; i++ {
				cs, err := experiment.CompareAll(cfg, core.PolicyShared, pol)
				if err != nil {
					b.Fatal(err)
				}
				mean = experiment.MeanImprovement(cs)
			}
			b.ReportMetric(mean, "meanVsShared%")
		})
	}
}

// BenchmarkAblationSplineKind varies the model engine's interpolation
// algorithm; the paper notes the scheme is independent of the curve
// fitting choice.
func BenchmarkAblationSplineKind(b *testing.B) {
	prof, err := workload.ByName("mgrid")
	if err != nil {
		b.Fatal(err)
	}
	base, err := experiment.RunOne(benchCfg(), prof, core.PolicyShared, experiment.BySections)
	if err != nil {
		b.Fatal(err)
	}
	for _, kind := range []spline.Kind{spline.NaturalCubic, spline.PCHIP, spline.Linear} {
		b.Run(kind.String(), func(b *testing.B) {
			cfg := benchCfg()
			var imp float64
			for i := 0; i < b.N; i++ {
				eng := core.NewModelEngine()
				eng.Kind = kind
				run, err := experiment.RunWithEngine(cfg, prof, eng, experiment.BySections)
				if err != nil {
					b.Fatal(err)
				}
				imp = 100 * (float64(base.Result.WallCycles) - float64(run.Result.WallCycles)) /
					float64(base.Result.WallCycles)
			}
			b.ReportMetric(imp, "improveVsShared%")
		})
	}
}

// BenchmarkAblationStaticVsPrivate quantifies what cross-partition hits
// are worth: a statically equal-partitioned *shared* cache (eviction
// control only) against true per-core private caches of the same
// capacity.
func BenchmarkAblationStaticVsPrivate(b *testing.B) {
	cfg := benchCfg()
	var mean float64
	for i := 0; i < b.N; i++ {
		cs, err := experiment.CompareAll(cfg, core.PolicyPrivate, core.PolicyStaticEqual)
		if err != nil {
			b.Fatal(err)
		}
		mean = experiment.MeanImprovement(cs)
	}
	b.ReportMetric(mean, "staticVsPrivate%")
}

// BenchmarkAblationDRAMModel compares the default flat memory latency
// against the banked open-row DRAM model (internal/mem): the headline
// comparison (model-based vs shared) should survive the richer,
// contention-aware memory timing.
func BenchmarkAblationDRAMModel(b *testing.B) {
	prof, err := workload.ByName("mgrid")
	if err != nil {
		b.Fatal(err)
	}
	for _, name := range []string{"flat", "banked"} {
		b.Run(name, func(b *testing.B) {
			cfg := benchCfg()
			var imp float64
			for i := 0; i < b.N; i++ {
				if name == "banked" {
					c, err := compareWithDRAM(cfg, prof)
					if err != nil {
						b.Fatal(err)
					}
					imp = c
				} else {
					c, err := experiment.Compare(cfg, prof, core.PolicyShared, core.PolicyModelBased)
					if err != nil {
						b.Fatal(err)
					}
					imp = c.ImprovementPct
				}
			}
			b.ReportMetric(imp, "improveVsShared%")
		})
	}
}

// BenchmarkAblationPhaseDetect compares the engine's two defences
// against phase changes on the phase-heaviest benchmark (swim): fixed
// point aging alone vs aging plus the online phase detector.
func BenchmarkAblationPhaseDetect(b *testing.B) {
	prof, err := workload.ByName("swim")
	if err != nil {
		b.Fatal(err)
	}
	base, err := experiment.RunOne(benchCfg(), prof, core.PolicyShared, experiment.BySections)
	if err != nil {
		b.Fatal(err)
	}
	for _, detect := range []bool{false, true} {
		name := "aging-only"
		if detect {
			name = "aging+detector"
		}
		b.Run(name, func(b *testing.B) {
			cfg := benchCfg()
			var imp float64
			for i := 0; i < b.N; i++ {
				eng := core.NewModelEngine()
				eng.PhaseDetect = detect
				run, err := experiment.RunWithEngine(cfg, prof, eng, experiment.BySections)
				if err != nil {
					b.Fatal(err)
				}
				imp = 100 * (float64(base.Result.WallCycles) - float64(run.Result.WallCycles)) /
					float64(base.Result.WallCycles)
			}
			b.ReportMetric(imp, "improveVsShared%")
		})
	}
}

// BenchmarkAblationPartitionMechanism compares the paper's Sec. V
// eviction-control partitioning against commercial-style contiguous
// way masks (Intel CAT) under the same model-based engine.
func BenchmarkAblationPartitionMechanism(b *testing.B) {
	prof, err := workload.ByName("cg")
	if err != nil {
		b.Fatal(err)
	}
	cfg := benchCfg()
	var evict, mask float64
	for i := 0; i < b.N; i++ {
		evict, mask, err = compareMechanisms(cfg, prof)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(evict, "evictCtrlVsShared%")
	b.ReportMetric(mask, "wayMaskVsShared%")
}

// BenchmarkAblationVsTADIP compares the paper's scheme against
// thread-aware dynamic insertion — the related-work alternative that
// manages the shared cache without partitioning at all.
func BenchmarkAblationVsTADIP(b *testing.B) {
	cfg := benchCfg()
	var cs []experiment.Comparison
	for i := 0; i < b.N; i++ {
		var err error
		cs, err = experiment.CompareAll(cfg, core.PolicyTADIP, core.PolicyModelBased)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportComparison(b, cs)
}

// BenchmarkAblationHybridTADIP measures whether the paper's
// partitioning and adaptive insertion compose: pure TADIP vs pure
// model-based partitioning vs the hybrid (TADIP insertion inside
// model-based partitions).
func BenchmarkAblationHybridTADIP(b *testing.B) {
	prof, err := workload.ByName("mgrid")
	if err != nil {
		b.Fatal(err)
	}
	cfg := benchCfg()
	var tadip, model, hybrid float64
	for i := 0; i < b.N; i++ {
		tadip, model, hybrid, err = compareHybridTADIP(cfg, prof)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(tadip, "tadipVsShared%")
	b.ReportMetric(model, "modelVsShared%")
	b.ReportMetric(hybrid, "hybridVsShared%")
}
