package intracache

// Service benchmarks for the partitiond daemon path: ingest throughput
// (sealed-envelope decode + admission + enqueue) and decision-tick
// latency across a populated session table. They run in the bench-gate
// CI job alongside the figure benchmarks (BenchmarkService matches the
// job's -bench regex), so regressions on the daemon's two hot paths
// are caught by cmd/benchdiff like any simulator regression.

import (
	"fmt"
	"sync/atomic"
	"testing"

	"intracache/internal/service"
	"intracache/internal/sim"
)

// benchServiceSample builds one healthy 4-thread sample; jitter varies
// the counters so consecutive samples are not stuck-counter repeats.
func benchServiceSample(jitter uint64) service.Sample {
	threads := make([]sim.ThreadIntervalStats, 4)
	for t := range threads {
		instr := uint64(100_000)
		threads[t] = sim.ThreadIntervalStats{
			Instructions: instr,
			ActiveCycles: instr*uint64(t+1) + jitter*uint64(t+3),
			StallCycles:  instr / 4,
			L1Misses:     1200 + jitter,
			L2Accesses:   900 + jitter,
			L2Hits:       700,
			L2Misses:     200 + jitter,
		}
	}
	return service.Sample{Threads: threads}
}

func benchServiceBatch(app string, samples int, base uint64) service.Batch {
	b := service.Batch{App: app, Threads: 4, Ways: 16}
	for i := 0; i < samples; i++ {
		b.Samples = append(b.Samples, benchServiceSample(base+uint64(i)*37))
	}
	return b
}

// BenchmarkServiceIngest measures the daemon's wire-to-queue path:
// seal + unseal of one 4-sample batch plus admission and enqueue into
// a steady-state session. Ticks run periodically so the queue never
// saturates into the (cheaper) drop path.
func BenchmarkServiceIngest(b *testing.B) {
	svc := service.New(service.Options{QueueCap: 256, MaxSamplesPerTick: 64})
	payload, err := service.SealJSON(benchServiceBatch("bench-app", 4, 1))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var batch service.Batch
		if err := service.UnsealJSON(payload, &batch); err != nil {
			b.Fatal(err)
		}
		if rep := svc.Ingest(batch); rep.Rejected != "" {
			b.Fatalf("rejected: %+v", rep)
		}
		if i%16 == 15 {
			b.StopTimer()
			svc.Tick(0)
			b.StartTimer()
		}
	}
}

// BenchmarkServiceIngestSharded measures the same wire-to-queue path
// through the 4-shard front door: FNV shard routing plus the per-shard
// lock. Single-threaded this prices the routing overhead against
// BenchmarkServiceIngest; under -cpu N the RunParallel variant below
// shows the contention win.
func BenchmarkServiceIngestSharded(b *testing.B) {
	sh := service.NewSharded(service.Options{QueueCap: 256, MaxSamplesPerTick: 64}, 4, 0)
	payload, err := service.SealJSON(benchServiceBatch("bench-app", 4, 1))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var batch service.Batch
		if err := service.UnsealJSON(payload, &batch); err != nil {
			b.Fatal(err)
		}
		if rep := sh.Ingest(batch); rep.Rejected != "" {
			b.Fatalf("rejected: %+v", rep)
		}
		if i%16 == 15 {
			b.StopTimer()
			sh.Tick(0)
			b.StartTimer()
		}
	}
}

// BenchmarkServiceIngestShardedParallel drives concurrent producers
// (one app per goroutine, like real agents) into the 4-shard service;
// with one lock per shard, producers on different shards no longer
// serialize. Run with -cpu 1,2,4 to see the scaling; the analogous
// single-lock service flatlines. Queues are bounded, so steady state
// is the drop-oldest regime — the same O(1) enqueue either way, which
// keeps the shard-count comparison fair and the memory flat.
func BenchmarkServiceIngestShardedParallel(b *testing.B) {
	for _, shards := range []int{1, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			sh := service.NewSharded(service.Options{QueueCap: 256, MaxSamplesPerTick: 64}, shards, 0)
			var next int32
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				id := atomic.AddInt32(&next, 1)
				app := fmt.Sprintf("agent-%03d", id)
				base := uint64(id) * 1_000_003
				i := uint64(0)
				for pb.Next() {
					i++
					if rep := sh.Ingest(benchServiceBatch(app, 4, base+i*37)); rep.Rejected != "" {
						b.Fatalf("rejected: %+v", rep)
					}
				}
			})
		})
	}
}

// BenchmarkServiceDecisionTick measures one decision round over 64
// populated sessions — the latency the daemon's per-tick SLO bounds.
// Reported ns/op is the full tick; divide by 64 for per-session cost.
func BenchmarkServiceDecisionTick(b *testing.B) {
	const sessions = 64
	svc := service.New(service.Options{QueueCap: 64, MaxSamplesPerTick: 2})
	for s := 0; s < sessions; s++ {
		app := fmt.Sprintf("app-%03d", s)
		if rep := svc.Ingest(benchServiceBatch(app, 2, uint64(s))); rep.Rejected != "" {
			b.Fatalf("seeding %s: %+v", app, rep)
		}
	}
	svc.Tick(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Refill outside the measured region so every tick decides over
		// a full session table.
		b.StopTimer()
		for s := 0; s < sessions; s++ {
			svc.Ingest(benchServiceBatch(fmt.Sprintf("app-%03d", s), 2, uint64(i*sessions+s)))
		}
		b.StartTimer()
		svc.Tick(0)
	}
}

// BenchmarkServiceTickSharded measures one decision round over 256
// populated sessions hashed across 4 shards, ticked by the worker
// pool. Workers default to min(GOMAXPROCS, shards), so -cpu 1,2,4
// sweeps the pool size: at -cpu 1 the reported ns/op prices the
// fan-out overhead against BenchmarkServiceDecisionTick; at -cpu 4
// the four shards decide concurrently.
func BenchmarkServiceTickSharded(b *testing.B) {
	const sessions = 256
	sh := service.NewSharded(service.Options{QueueCap: 64, MaxSamplesPerTick: 2}, 4, 0)
	refill := func(round int) {
		for s := 0; s < sessions; s++ {
			sh.Ingest(benchServiceBatch(fmt.Sprintf("app-%03d", s), 2, uint64(round*sessions+s)))
		}
	}
	refill(0)
	sh.Tick(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		refill(i + 1)
		b.StartTimer()
		sh.Tick(0)
	}
}
