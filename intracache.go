// Package intracache is a library reproduction of "Intra-Application
// Cache Partitioning" (Muralidhara, Kandemir, Raghavan — IPDPS 2010):
// a runtime system that dynamically partitions a shared last-level
// cache among the threads of a single multithreaded application so the
// critical path thread — the slowest thread of each barrier-delimited
// parallel section — is sped up at every execution interval.
//
// The package is a facade over the repository's internal packages:
//
//   - a trace-driven CMP simulator (cores, private L1s, shared
//     way-partitioned L2, barriers, execution intervals);
//   - the paper's partitioning schemes (CPI-proportional and
//     spline-model-based) plus the baselines it is evaluated against
//     (shared, private, static-equal, throughput-oriented UCP);
//   - nine synthetic NAS/SPEC-OMP-like benchmark profiles;
//   - the evaluation harness that reproduces every figure and table in
//     the paper (see cmd/figures and EXPERIMENTS.md).
//
// Quick start:
//
//	cfg := intracache.DefaultConfig()
//	run, err := intracache.Simulate(cfg, "cg", intracache.PolicyModelBased, intracache.ByIntervals)
//	if err != nil { ... }
//	fmt.Println(run.Result.AppCPI())
//
// Compare the dynamic scheme against a baseline on fixed work:
//
//	c, err := intracache.CompareOn(cfg, "cg", intracache.PolicyShared, intracache.PolicyModelBased)
//	fmt.Printf("%.1f%% faster than a shared cache\n", c.ImprovementPct)
package intracache

import (
	"context"

	"intracache/internal/cache"
	"intracache/internal/core"
	"intracache/internal/experiment"
	"intracache/internal/fault"
	"intracache/internal/sim"
	"intracache/internal/workload"
)

// Policy identifies a cache-management scheme. See the Policy*
// constants.
type Policy = core.Policy

// The available policies. PolicyModelBased is the paper's headline
// contribution; the others are its baselines.
const (
	// PolicyShared is an unpartitioned shared cache with global LRU.
	PolicyShared = core.PolicyShared
	// PolicyPrivate splits the cache into equal private per-core caches.
	PolicyPrivate = core.PolicyPrivate
	// PolicyStaticEqual is a partitioned shared cache with a fixed
	// equal way split (cross-partition hits allowed).
	PolicyStaticEqual = core.PolicyStaticEqual
	// PolicyCPIProportional assigns ways proportional to thread CPIs
	// (paper Sec. VI-A).
	PolicyCPIProportional = core.PolicyCPIProportional
	// PolicyModelBased fits per-thread CPI-vs-ways spline models and
	// moves ways to the critical path thread (paper Sec. VI-B).
	PolicyModelBased = core.PolicyModelBased
	// PolicyThroughputUCP maximises total hits with a UCP-style greedy
	// allocator (the paper's throughput-oriented comparison).
	PolicyThroughputUCP = core.PolicyThroughputUCP
)

// Policies returns every policy in presentation order.
func Policies() []Policy { return core.AllPolicies() }

// ParsePolicy resolves a short policy name ("model-based", "shared",
// ...) to a Policy.
func ParsePolicy(name string) (Policy, error) { return core.ParsePolicy(name) }

// Mechanism selects the L2's partition-enforcement geometry. The paper
// builds on way partitioning; the alternatives trade allocation
// granularity for cheaper hardware. Set Config.Mechanism to run any
// partition-capable policy on a different geometry.
type Mechanism = cache.Mechanism

const (
	// MechWays is eviction-controlled way partitioning (the paper's
	// mechanism; the default).
	MechWays = cache.MechWays
	// MechSets gives each thread a contiguous power-of-two-aligned range
	// of set groups — partitioning by set index, no per-way control.
	MechSets = cache.MechSets
	// MechCluster partitions ways independently within each cluster of
	// sets, approximating per-set way control at lower cost.
	MechCluster = cache.MechCluster
)

// Mechanisms returns every partitioning mechanism in presentation order.
func Mechanisms() []Mechanism { return cache.Mechanisms() }

// ParseMechanism resolves a mechanism name ("ways", "sets", "cluster")
// to a Mechanism.
func ParseMechanism(name string) (Mechanism, error) { return cache.ParseMechanism(name) }

// Config holds a complete experiment configuration: machine geometry,
// timing, workload run lengths and the random seed.
type Config = experiment.Config

// DefaultConfig returns the scaled default configuration (4 threads,
// 4 KiB L1s, 256 KiB 64-way shared L2 — the paper's testbed at 1/4
// capacity with geometry ratios preserved).
func DefaultConfig() Config { return experiment.DefaultConfig() }

// RunMode selects the run-length clock.
type RunMode = experiment.RunMode

const (
	// ByIntervals runs Config.Intervals execution intervals.
	ByIntervals = experiment.ByIntervals
	// BySections runs Config.Sections parallel sections (fixed work;
	// use for policy-vs-policy wall-time comparisons).
	BySections = experiment.BySections
)

// Run is one completed (benchmark, policy) simulation, including the
// full per-interval counter history and — for dynamic policies — the
// runtime system with its decision log and CPI models.
type Run = experiment.Run

// Result is a completed simulation's summary (wall cycles, per-thread
// counters, interval history).
type Result = sim.Result

// IntervalStats is one execution interval's per-thread counters.
type IntervalStats = sim.IntervalStats

// Comparison is one benchmark's baseline-vs-candidate outcome.
type Comparison = experiment.Comparison

// Profile is one synthetic benchmark workload. Construct custom
// profiles to model your own application's threads; the fields mirror
// per-thread cache behaviour (working set, reuse skew, streaming share,
// shared-data share, phase schedule).
type Profile = workload.Profile

// PhaseSpec describes a Profile's phase schedule.
type PhaseSpec = workload.PhaseSpec

// Phase schedule kinds for PhaseSpec.
const (
	// PhaseConstant applies no phase modulation.
	PhaseConstant = workload.PhaseConstant
	// PhaseSine modulates working sets sinusoidally across intervals.
	PhaseSine = workload.PhaseSine
	// PhaseStep rescales working sets once at a given interval.
	PhaseStep = workload.PhaseStep
)

// Benchmarks returns the names of the nine built-in benchmark profiles.
func Benchmarks() []string { return workload.Names() }

// Profiles returns the nine built-in benchmark profiles.
func Profiles() []Profile { return workload.Profiles() }

// ProfileByName returns the named built-in profile.
func ProfileByName(name string) (Profile, error) { return workload.ByName(name) }

// Simulate runs one built-in benchmark under one policy.
func Simulate(cfg Config, benchmark string, pol Policy, mode RunMode) (Run, error) {
	return experiment.RunOneByName(cfg, benchmark, pol, mode)
}

// CheckpointSpec configures crash-safe snapshotting of a simulation:
// where the checkpoint file lives, how often to snapshot, and whether
// to resume from an existing file.
type CheckpointSpec = experiment.CheckpointSpec

// SimulateCheckpointed is Simulate made crash-safe. The run observes
// ctx at execution-interval boundaries, snapshots its complete state to
// spec.Path (atomically) every spec.Every intervals and when stopping,
// and — with spec.Resume — continues a previous run from its last
// snapshot. A run killed at any interval boundary and resumed this way
// produces a bit-identical Result to an uninterrupted run.
func SimulateCheckpointed(ctx context.Context, cfg Config, benchmark string, pol Policy,
	mode RunMode, spec CheckpointSpec) (Run, error) {
	return experiment.CheckpointedRun(ctx, cfg, benchmark, pol, mode, spec, nil)
}

// ShardSpec configures a time-sharded simulation: how many disjoint
// time shards to split the run into, how many workers simulate them
// concurrently, and optional per-shard checkpointing.
type ShardSpec = experiment.ShardSpec

// SimulateSharded runs one built-in benchmark under one policy with the
// run's time range split into spec.Shards shards simulated in parallel
// and stitched into one Run. The shard count is part of the run's
// semantics (each shard starts from a synthesized cold state); the
// worker count never is. spec.Shards <= 1 is exactly Simulate.
func SimulateSharded(ctx context.Context, cfg Config, benchmark string, pol Policy,
	mode RunMode, spec ShardSpec) (Run, error) {
	return experiment.ShardedRunByName(ctx, cfg, benchmark, pol, mode, spec, nil)
}

// SimulateProfile runs a custom workload profile under one policy.
func SimulateProfile(cfg Config, prof Profile, pol Policy, mode RunMode) (Run, error) {
	return experiment.RunOne(cfg, prof, pol, mode)
}

// CompareOn runs one benchmark under a baseline and a candidate policy
// for the same fixed work and reports the candidate's improvement.
func CompareOn(cfg Config, benchmark string, baseline, candidate Policy) (Comparison, error) {
	prof, err := workload.ByName(benchmark)
	if err != nil {
		return Comparison{}, err
	}
	return experiment.Compare(cfg, prof, baseline, candidate)
}

// CompareProfile is CompareOn for a custom workload profile.
func CompareProfile(cfg Config, prof Profile, baseline, candidate Policy) (Comparison, error) {
	return experiment.Compare(cfg, prof, baseline, candidate)
}

// CompareAll runs baseline vs candidate over all nine built-in
// benchmarks (the shape of the paper's Figs. 19-21).
func CompareAll(cfg Config, baseline, candidate Policy) ([]Comparison, error) {
	return experiment.CompareAll(cfg, baseline, candidate)
}

// CompareAllParallel is CompareAll with the benchmarks fanned out over
// a worker pool (workers <= 0 uses GOMAXPROCS). Results are identical
// to CompareAll's: simulations are independent and deterministic.
func CompareAllParallel(cfg Config, baseline, candidate Policy, workers int) ([]Comparison, error) {
	return experiment.CompareAllParallel(cfg, baseline, candidate, workers)
}

// MeanImprovement averages ImprovementPct across comparisons.
func MeanImprovement(cs []Comparison) float64 { return experiment.MeanImprovement(cs) }

// MaxImprovement returns the largest ImprovementPct across comparisons.
func MaxImprovement(cs []Comparison) float64 { return experiment.MaxImprovement(cs) }

// FaultPlan configures deterministic fault injection on the telemetry
// path between the simulator and the partitioning runtime: CPI counter
// noise, dropped sampling intervals, stuck counters, delayed
// repartition decisions, transient apparent stalls. Set Config.Fault to
// a non-zero plan to run any simulation under degraded telemetry;
// ground truth is never perturbed. The zero plan injects nothing.
type FaultPlan = fault.Plan

// FaultStats counts the faults injected during one run (available as
// Run.FaultStats when a plan was active).
type FaultStats = fault.Stats

// FaultLevel is one named fault intensity of a robustness sweep.
type FaultLevel = experiment.FaultLevel

// RobustnessCell is one (benchmark, policy, fault level) outcome of a
// robustness sweep.
type RobustnessCell = experiment.RobustnessCell

// DefaultFaultLevels returns the canonical fault-intensity ladder:
// clean, moderate, heavy, catastrophic.
func DefaultFaultLevels() []FaultLevel { return experiment.DefaultFaultLevels() }

// RobustnessSweep measures every (benchmark, policy, fault level) cell
// against a clean shared-cache baseline on the worker pool. nil
// arguments select all nine benchmarks, the {static-equal,
// cpi-proportional, model-based} policy set, and DefaultFaultLevels().
// Failing cells carry per-cell errors; the returned error is non-nil
// only when every cell failed.
func RobustnessSweep(cfg Config, benchmarks []string, policies []Policy,
	levels []FaultLevel, workers int) ([]RobustnessCell, error) {
	return experiment.RobustnessSweep(cfg, benchmarks, policies, levels, workers)
}

// SimulateWithMigration runs a benchmark under a policy and, at the end
// of interval swapAt, migrates threads i and j between their cores —
// the paper's Sec. VII unpinned-thread scenario. The partitioner's
// allocation should follow the migrated workload within a few
// intervals.
func SimulateWithMigration(cfg Config, benchmark string, pol Policy, swapAt, i, j int) (Run, error) {
	prof, err := workload.ByName(benchmark)
	if err != nil {
		return Run{}, err
	}
	return experiment.RunWithMigration(cfg, prof, pol, swapAt, i, j)
}
