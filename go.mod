module intracache

go 1.22
