package main

import (
	"math"
	"path/filepath"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: intracache
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkFig19VsPrivate-4   	       1	2694531000 ns/op	        54.72 missRed%	   128 B/op	       3 allocs/op
BenchmarkFig20VsShared-4    	       1	2326118000 ns/op	        19.50 missRed%	    64 B/op	       2 allocs/op
BenchmarkFig02Config        	 5000000	       231.5 ns/op	       0 B/op	       0 allocs/op
PASS
ok  	intracache	5.1s
`

func TestParseBench(t *testing.T) {
	got, err := parseBench(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]benchResult{
		"BenchmarkFig19VsPrivate": {NsPerOp: 2694531000, AllocsPerOp: 3, Procs: 4},
		"BenchmarkFig20VsShared":  {NsPerOp: 2326118000, AllocsPerOp: 2, Procs: 4},
		"BenchmarkFig02Config":    {NsPerOp: 231.5, AllocsPerOp: 0},
	}
	if len(got) != len(want) {
		t.Fatalf("parsed %d results, want %d: %v", len(got), len(want), got)
	}
	for name, w := range want {
		if got[name] != w {
			t.Errorf("%s = %+v, want %+v", name, got[name], w)
		}
	}
}

func TestParseBenchKeepsFastestDuplicate(t *testing.T) {
	in := "BenchmarkX-4 1 200 ns/op\nBenchmarkX-4 1 100 ns/op\nBenchmarkX-4 1 150 ns/op\n"
	got, err := parseBench(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if got["BenchmarkX"].NsPerOp != 100 {
		t.Errorf("kept %v ns/op, want fastest (100)", got["BenchmarkX"].NsPerOp)
	}
}

// TestGateFailsOnInjectedSlowdown is the gate's own regression test: a
// uniform 2x slowdown must trip a 10% threshold, and the unchanged run
// must pass it.
func TestGateFailsOnInjectedSlowdown(t *testing.T) {
	base := map[string]benchResult{
		"BenchmarkA": {NsPerOp: 1000},
		"BenchmarkB": {NsPerOp: 2000},
		"BenchmarkC": {NsPerOp: 500},
	}
	slow := make(map[string]benchResult, len(base))
	for k, v := range base {
		slow[k] = benchResult{NsPerOp: 2 * v.NsPerOp}
	}
	rep, err := compare(base, slow, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Failed {
		t.Errorf("2x slowdown passed the 10%% gate (geomean %.3f)", rep.Geomean)
	}
	if math.Abs(rep.Geomean-2) > 1e-9 {
		t.Errorf("geomean = %v, want 2", rep.Geomean)
	}
	if !strings.Contains(rep.String(), "FAIL") {
		t.Errorf("report does not say FAIL:\n%s", rep.String())
	}

	rep, err = compare(base, base, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed || rep.Geomean != 1 {
		t.Errorf("identical run failed the gate: geomean %v failed=%v", rep.Geomean, rep.Failed)
	}
}

// TestGateToleratesNoiseBelowThreshold: one benchmark 15% slower and
// one 10% faster nets out under a 10% geomean threshold, so ordinary
// single-benchmark jitter does not flap the gate.
func TestGateToleratesNoiseBelowThreshold(t *testing.T) {
	base := map[string]benchResult{
		"BenchmarkA": {NsPerOp: 1000},
		"BenchmarkB": {NsPerOp: 1000},
	}
	cur := map[string]benchResult{
		"BenchmarkA": {NsPerOp: 1150},
		"BenchmarkB": {NsPerOp: 900},
	}
	rep, err := compare(base, cur, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed {
		t.Errorf("mixed ±jitter tripped the gate: geomean %.3f", rep.Geomean)
	}
}

func TestCompareReportsMissingBenchmarks(t *testing.T) {
	base := map[string]benchResult{"BenchmarkA": {NsPerOp: 1}, "BenchmarkGone": {NsPerOp: 1}}
	cur := map[string]benchResult{"BenchmarkA": {NsPerOp: 1}, "BenchmarkNew": {NsPerOp: 1}}
	rep, err := compare(base, cur, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.OnlyBase) != 1 || rep.OnlyBase[0] != "BenchmarkGone" {
		t.Errorf("OnlyBase = %v", rep.OnlyBase)
	}
	if len(rep.OnlyCur) != 1 || rep.OnlyCur[0] != "BenchmarkNew" {
		t.Errorf("OnlyCur = %v", rep.OnlyCur)
	}
	if _, err := compare(base, map[string]benchResult{"BenchmarkZ": {NsPerOp: 1}}, 0.1); err == nil {
		t.Error("disjoint benchmark sets did not error")
	}
}

// TestGateFailsOnMissingBenchmark pins the hard-fail: a benchmark in
// the baseline but absent from the run fails the gate even when every
// common benchmark is at parity, and the report says FAIL, not warning.
func TestGateFailsOnMissingBenchmark(t *testing.T) {
	base := map[string]benchResult{"BenchmarkA": {NsPerOp: 1}, "BenchmarkGone": {NsPerOp: 1}}
	cur := map[string]benchResult{"BenchmarkA": {NsPerOp: 1}}
	rep, err := compare(base, cur, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Failed {
		t.Error("gate passed with a baseline benchmark missing from the run")
	}
	out := rep.String()
	if !strings.Contains(out, "FAIL: BenchmarkGone is in the baseline but was not run") {
		t.Errorf("report does not flag the missing benchmark as a failure:\n%s", out)
	}
	if strings.Contains(out, "warning: BenchmarkGone") {
		t.Errorf("missing benchmark still reported as a mere warning:\n%s", out)
	}

	// The complete run still passes at parity.
	rep, err = compare(base, map[string]benchResult{
		"BenchmarkA": {NsPerOp: 1}, "BenchmarkGone": {NsPerOp: 1},
	}, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed {
		t.Error("gate failed with all baseline benchmarks present at parity")
	}
}

// TestCompareNotesProcsMismatch: a baseline recorded on a different
// core count is flagged (parallel benchmarks scale with GOMAXPROCS),
// but the note alone never fails the gate.
func TestCompareNotesProcsMismatch(t *testing.T) {
	base := map[string]benchResult{
		"BenchmarkA": {NsPerOp: 1000, Procs: 8},
		"BenchmarkB": {NsPerOp: 1000, Procs: 8},
	}
	cur := map[string]benchResult{
		"BenchmarkA": {NsPerOp: 1000, Procs: 4},
		"BenchmarkB": {NsPerOp: 1000, Procs: 8},
	}
	rep, err := compare(base, cur, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed {
		t.Errorf("procs mismatch alone failed the gate: %+v", rep)
	}
	out := rep.String()
	if !strings.Contains(out, "BenchmarkA: baseline recorded at GOMAXPROCS=8 but this run used 4") {
		t.Errorf("report does not note the procs mismatch:\n%s", out)
	}
	if strings.Contains(out, "BenchmarkB: baseline recorded") {
		t.Errorf("matching procs wrongly flagged:\n%s", out)
	}
}

func TestBaselineRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "baseline.json")
	results, err := parseBench(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if err := writeBaseline(path, results); err != nil {
		t.Fatal(err)
	}
	b, err := readBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Results) != len(results) {
		t.Fatalf("round trip lost results: %d vs %d", len(b.Results), len(results))
	}
	for k, v := range results {
		if b.Results[k] != v {
			t.Errorf("%s = %+v, want %+v", k, b.Results[k], v)
		}
	}
}
