// Command benchdiff is the CI performance-regression gate. It parses
// `go test -bench` output and either records it as a baseline
// (-update) or compares it against a committed baseline and fails when
// the geometric-mean slowdown exceeds a threshold.
//
// The gate compares whole benchmark runs on the same machine class, so
// single-benchmark noise is damped two ways: the verdict is the
// geomean across every benchmark present in both runs, and individual
// ratios are reported so a real regression is attributable. A baseline
// benchmark absent from the run is itself a failure — a deleted or
// renamed benchmark cannot dodge the gate; refresh the baseline with
// -update when the removal is intentional.
//
// Usage:
//
//	go test -run '^$' -bench 'BenchmarkFig' -benchtime 1x . | benchdiff -update
//	go test -run '^$' -bench 'BenchmarkFig' -benchtime 1x . | benchdiff -threshold 0.10
//	benchdiff -input bench.out -baseline BENCH_baseline.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"sort"
	"strings"
)

func main() {
	baselinePath := flag.String("baseline", "BENCH_baseline.json", "baseline file to compare against or update")
	inputPath := flag.String("input", "-", "benchmark output to read (\"-\" = stdin)")
	threshold := flag.Float64("threshold", 0.10, "fail when the geomean slowdown exceeds this fraction")
	update := flag.Bool("update", false, "write the parsed results as the new baseline instead of comparing")
	flag.Parse()

	in := os.Stdin
	if *inputPath != "-" {
		f, err := os.Open(*inputPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}
	results, err := parseBench(in)
	if err != nil {
		fatal(err)
	}
	if len(results) == 0 {
		fatal(fmt.Errorf("no benchmark results in input"))
	}

	if *update {
		if err := writeBaseline(*baselinePath, results); err != nil {
			fatal(err)
		}
		fmt.Printf("benchdiff: wrote %d benchmarks to %s\n", len(results), *baselinePath)
		return
	}

	base, err := readBaseline(*baselinePath)
	if err != nil {
		fatal(err)
	}
	rep, err := compare(base.Results, results, *threshold)
	if err != nil {
		fatal(err)
	}
	fmt.Print(rep.String())
	if rep.Failed {
		os.Exit(1)
	}
}

// benchResult is one benchmark's recorded cost. Procs is the
// GOMAXPROCS the run used (the benchmark name's -N suffix; 0 when the
// suffix was absent): parallel benchmarks scale with it, so ns/op from
// different Procs are flagged as not directly comparable.
type benchResult struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	Procs       int     `json:"procs,omitempty"`
}

// baseline is the committed BENCH_baseline.json shape. GoVersion and
// Host document where the numbers came from; only Results is compared.
type baseline struct {
	GoVersion string                 `json:"go_version"`
	Host      string                 `json:"host"`
	Results   map[string]benchResult `json:"results"`
}

func writeBaseline(path string, results map[string]benchResult) error {
	b := baseline{
		GoVersion: runtime.Version(),
		Host:      runtime.GOOS + "/" + runtime.GOARCH,
		Results:   results,
	}
	buf, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}

func readBaseline(path string) (baseline, error) {
	var b baseline
	buf, err := os.ReadFile(path)
	if err != nil {
		return b, err
	}
	if err := json.Unmarshal(buf, &b); err != nil {
		return b, fmt.Errorf("%s: %w", path, err)
	}
	if len(b.Results) == 0 {
		return b, fmt.Errorf("%s: baseline holds no results", path)
	}
	return b, nil
}

// report is the outcome of one baseline comparison.
type report struct {
	Rows      []row
	OnlyBase  []string // benchmarks in the baseline but not this run
	OnlyCur   []string // benchmarks in this run but not the baseline
	Geomean   float64  // geomean of current/baseline time ratios
	Threshold float64
	Failed    bool
}

type row struct {
	Name       string
	BaseNs     float64
	CurNs      float64
	Ratio      float64
	AllocDelta float64
	// BaseProcs/CurProcs record each side's GOMAXPROCS; a mismatch is
	// noted in the report (the ratio still counts toward the geomean —
	// the note exists so a surprising ratio is attributable).
	BaseProcs int
	CurProcs  int
}

func compare(base, cur map[string]benchResult, threshold float64) (*report, error) {
	rep := &report{Threshold: threshold}
	logSum := 0.0
	for name, b := range base {
		c, ok := cur[name]
		if !ok {
			rep.OnlyBase = append(rep.OnlyBase, name)
			continue
		}
		if b.NsPerOp <= 0 || c.NsPerOp <= 0 {
			return nil, fmt.Errorf("%s: non-positive ns/op (base %g, current %g)", name, b.NsPerOp, c.NsPerOp)
		}
		ratio := c.NsPerOp / b.NsPerOp
		logSum += math.Log(ratio)
		rep.Rows = append(rep.Rows, row{
			Name:       name,
			BaseNs:     b.NsPerOp,
			CurNs:      c.NsPerOp,
			Ratio:      ratio,
			AllocDelta: c.AllocsPerOp - b.AllocsPerOp,
			BaseProcs:  b.Procs,
			CurProcs:   c.Procs,
		})
	}
	for name := range cur {
		if _, ok := base[name]; !ok {
			rep.OnlyCur = append(rep.OnlyCur, name)
		}
	}
	if len(rep.Rows) == 0 {
		return nil, fmt.Errorf("no benchmarks in common between baseline and current run")
	}
	sort.Slice(rep.Rows, func(i, j int) bool { return rep.Rows[i].Name < rep.Rows[j].Name })
	sort.Strings(rep.OnlyBase)
	sort.Strings(rep.OnlyCur)
	rep.Geomean = math.Exp(logSum / float64(len(rep.Rows)))
	// A baseline benchmark missing from the run fails the gate outright:
	// deleting (or renaming) a benchmark must not dodge the comparison.
	rep.Failed = rep.Geomean > 1+threshold || len(rep.OnlyBase) > 0
	return rep, nil
}

func (r *report) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-40s %14s %14s %8s %8s %6s\n", "benchmark", "baseline ns/op", "current ns/op", "ratio", "Δallocs", "procs")
	for _, row := range r.Rows {
		procs := procsLabel(row.BaseProcs, row.CurProcs)
		fmt.Fprintf(&sb, "%-40s %14.0f %14.0f %7.3fx %8.0f %6s\n",
			row.Name, row.BaseNs, row.CurNs, row.Ratio, row.AllocDelta, procs)
	}
	for _, row := range r.Rows {
		if row.BaseProcs != 0 && row.CurProcs != 0 && row.BaseProcs != row.CurProcs {
			fmt.Fprintf(&sb, "note: %s: baseline recorded at GOMAXPROCS=%d but this run used %d — its ratio is not core-for-core comparable\n",
				row.Name, row.BaseProcs, row.CurProcs)
		}
	}
	for _, n := range r.OnlyBase {
		fmt.Fprintf(&sb, "FAIL: %s is in the baseline but was not run (remove it with -update if intentional)\n", n)
	}
	for _, n := range r.OnlyCur {
		fmt.Fprintf(&sb, "note: %s has no baseline entry (add with -update)\n", n)
	}
	verdict := "PASS"
	if r.Failed {
		verdict = "FAIL"
	}
	fmt.Fprintf(&sb, "geomean ratio %.3fx over %d benchmarks (threshold %.3fx): %s\n",
		r.Geomean, len(r.Rows), 1+r.Threshold, verdict)
	return sb.String()
}

// procsLabel renders a row's GOMAXPROCS column: one number when both
// sides agree (or only one side recorded it), "b→c" on a mismatch.
func procsLabel(base, cur int) string {
	switch {
	case base == cur && base == 0:
		return "-"
	case base == cur:
		return fmt.Sprintf("%d", base)
	case base == 0:
		return fmt.Sprintf("?→%d", cur)
	case cur == 0:
		return fmt.Sprintf("%d→?", base)
	default:
		return fmt.Sprintf("%d→%d", base, cur)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchdiff:", err)
	os.Exit(1)
}
