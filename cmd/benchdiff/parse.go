package main

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// parseBench extracts benchmark results from `go test -bench` output.
// A result line looks like
//
//	BenchmarkFig19VsPrivate-4   1   2694531000 ns/op   54.72 missRed%   128 B/op   3 allocs/op
//
// i.e. name, iteration count, then (value, unit) pairs. The -N
// GOMAXPROCS suffix is stripped from the key so baselines stay
// comparable across machines, but N is kept as the result's Procs:
// parallel benchmarks scale with the core count, so a comparison
// against a baseline recorded at a different GOMAXPROCS is noted in
// the report. Custom b.ReportMetric units are ignored. Duplicate
// names (e.g. -count > 1) keep the fastest run, the usual benchstat
// convention for reducing noise.
func parseBench(r io.Reader) (map[string]benchResult, error) {
	out := make(map[string]benchResult)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		f := strings.Fields(sc.Text())
		if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") {
			continue
		}
		name := f[0]
		var res benchResult
		if i := strings.LastIndex(name, "-"); i > 0 {
			if n, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
				res.Procs = n
			}
		}
		sawNs := false
		for i := 2; i+1 < len(f); i += 2 {
			v, err := strconv.ParseFloat(f[i], 64)
			if err != nil {
				return nil, fmt.Errorf("%s: bad value %q: %w", name, f[i], err)
			}
			switch f[i+1] {
			case "ns/op":
				res.NsPerOp = v
				sawNs = true
			case "allocs/op":
				res.AllocsPerOp = v
			}
		}
		if !sawNs {
			continue // e.g. a -benchtime=1x line cut short; nothing to gate on
		}
		if prev, ok := out[name]; !ok || res.NsPerOp < prev.NsPerOp {
			out[name] = res
		}
	}
	return out, sc.Err()
}
