// Command sweep runs parameter sensitivity sweeps of the dynamic
// partitioner against a baseline: cache size, interval length, thread
// count, or telemetry-fault intensity. Points run in parallel
// (simulations are independent and deterministic).
//
// Usage:
//
//	sweep -kind cache    -bench cg          # L2 capacity sweep
//	sweep -kind interval -bench swim        # execution-interval sweep
//	sweep -kind threads  -bench mgrid       # core-count sweep
//	sweep -kind robust                      # policies × fault levels
//	sweep -kind mechanism                   # partitioning mechanisms × policies
//	sweep -kind cache -json                 # machine-readable output
//
// Cell sweeps accept -mechanism ways|sets|cluster (plus -set-groups /
// -clusters geometry knobs) to run the candidate on a different
// partitioning geometry; -kind mechanism sweeps all three at once.
//
// Long sweeps are crash-safe: with -resume DIR each finished cell is
// journaled to DIR and a rerun (after a crash, a kill, or ctrl-C) skips
// the finished cells. -cell-timeout, -stall-timeout and -retries bound
// and retry individual cells.
//
// Cell sweeps can also be distributed across worker processes:
//
//	sweep -kind cache -exec-workers 4            # 4 local subprocesses
//	sweep -worker :9090                          # serve cells over HTTP
//	sweep -kind cache -worker-url http://h:9090  # use remote workers
//
// The coordinator leases cells to workers, re-dispatches on worker
// death or silence, and falls back to in-process execution when no
// worker is reachable, so a distributed sweep produces the same
// results (and the same resume journal, byte for byte) as a local one.
//
// Exit codes: 0 when every cell succeeded, 3 when the sweep finished
// but some cells failed (partial results were still printed and
// journaled), 1 on a hard error (bad flags, cancellation, every cell
// failed).
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"intracache/internal/cache"
	"intracache/internal/checkpoint"
	"intracache/internal/core"
	"intracache/internal/dsweep"
	"intracache/internal/experiment"
	"intracache/internal/fault"
	"intracache/internal/profiling"
	"intracache/internal/report"
	"intracache/internal/trace"
)

// Exit codes (documented in README.md).
const (
	exitOK      = 0
	exitHard    = 1
	exitPartial = 3 // sweep completed, but some cells failed
)

func main() {
	kind := flag.String("kind", "cache", "sweep kind: cache, interval, threads, robust, mechanism")
	bench := flag.String("bench", "cg", "benchmark to sweep (kind=mechanism: all nine unless set)")
	baseName := flag.String("baseline", "shared", "baseline policy")
	candName := flag.String("candidate", "model-based", "candidate policy (kind=mechanism: the full partition-capable ladder unless set)")
	mechName := flag.String("mechanism", "ways", "partitioning mechanism for the candidate: ways, sets, cluster (ignored by kind=mechanism, which sweeps all)")
	setGroups := flag.Int("set-groups", 0, "sets mechanism: number of set groups (0 = cache default)")
	clusters := flag.Int("clusters", 0, "cluster mechanism: number of set clusters (0 = cache default)")
	sections := flag.Int("sections", 40, "fixed work per run (parallel sections)")
	workers := flag.Int("workers", 0, "parallel workers (0 = GOMAXPROCS)")
	asJSON := flag.Bool("json", false, "emit JSON instead of a table")
	resume := flag.String("resume", "", "journal directory: finished cells are recorded there and skipped on rerun")
	outPath := flag.String("out", "", "also write the results as JSON to this file (atomic write)")
	cellTimeout := flag.Duration("cell-timeout", 0, "hard wall-clock deadline per cell attempt (0 = none)")
	stallTimeout := flag.Duration("stall-timeout", 0, "kill a cell making no interval progress for this long (0 = off)")
	retries := flag.Int("retries", 1, "total attempts per cell (transient failures are retried with capped exponential backoff)")
	faultSeed := flag.Uint64("fault-seed", 1, "fault injection random seed")
	faultCPINoise := flag.Float64("fault-cpi-noise", 0, "multiplicative CPI counter noise, e.g. 0.1 for ±10%")
	faultAddNoise := flag.Float64("fault-add-noise", 0, "additive counter noise in cycles per instruction")
	faultDrop := flag.Float64("fault-drop", 0, "probability of losing a whole sampling interval")
	faultStuck := flag.Float64("fault-stuck", 0, "per-thread probability of a stuck-counter repeat")
	faultDelay := flag.Int("fault-delay", 0, "repartition decisions applied this many intervals late")
	faultStall := flag.Float64("fault-stall", 0, "per-thread probability of a transient apparent stall")
	pipeline := flag.Bool("pipeline", false, "pipelined trace generation: sweep cells share generated segments (bit-identical results)")
	parallelGen := flag.Int("parallel-gen", 0, "generate each thread's trace on this many goroutines per run (bit-identical results; implies -pipeline)")
	shards := flag.Int("shards", 0, "time-shard each cell's runs into this many parallel shards (changes results and the resume journal identity; 0/1 = off)")
	traceCacheMB := flag.Int("trace-cache-mb", 0, "segment-cache budget in MiB for -pipeline (0 = default 256, negative = no sharing)")
	pprofPath := flag.String("pprof", "", "write a CPU profile of the sweep to this file")
	workerMode := flag.String("worker", "", `run as a sweep worker instead of a coordinator: "stdio" speaks the protocol on stdin/stdout, anything else is an HTTP listen address like ":9090"`)
	execWorkers := flag.Int("exec-workers", 0, "distribute cells across this many local worker subprocesses (the binary re-execs itself with -worker stdio)")
	workerURLs := flag.String("worker-url", "", "comma-separated base URLs of HTTP workers, e.g. http://a:9090,http://b:9090")
	lease := flag.Duration("lease", 0, "distributed mode: declare a cell lost and re-dispatch it when its worker sends no heartbeat for this long (0 = 10s)")
	chaosSpec := flag.String("chaos", "", `execution-fault plan injected into workers for chaos testing, e.g. "seed=7,kill=0.2,hang=0.1" (see internal/fault)`)
	workerJournal := flag.String("worker-journal", "", "worker mode: journal each computed cell here before replying, so a dying worker's work is recoverable")
	flag.Parse()
	explicit := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { explicit[f.Name] = true })

	if *workerMode != "" {
		runWorker(*workerMode, *workerJournal, *chaosSpec)
		return
	}

	stopProfile := profiling.MustStartCPU(*pprofPath)
	defer stopProfile()

	baseline, err := core.ParsePolicy(*baseName)
	if err != nil {
		fatal(err)
	}
	candidate, err := core.ParsePolicy(*candName)
	if err != nil {
		fatal(err)
	}

	cfg := experiment.DefaultConfig()
	cfg.Sections = *sections
	plan := fault.Plan{
		Seed:          *faultSeed,
		CPINoise:      *faultCPINoise,
		CPIAddNoise:   *faultAddNoise,
		DropRate:      *faultDrop,
		StuckRate:     *faultStuck,
		DecisionDelay: *faultDelay,
		StallRate:     *faultStall,
	}
	if !plan.IsZero() {
		cfg.Fault = &plan
	}
	cfg.Pipeline = *pipeline
	cfg.ParallelGen = *parallelGen
	cfg.TraceCacheMB = *traceCacheMB
	mech, err := cache.ParseMechanism(*mechName)
	if err != nil {
		fatal(err)
	}
	cfg.Mechanism = mech
	cfg.SetGroups = *setGroups
	cfg.Clusters = *clusters

	// A first ctrl-C / SIGTERM cancels the sweep: no new cells start,
	// in-flight cells stop at their next interval boundary, and finished
	// cells are already journaled. A second signal kills immediately.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	opts := experiment.SweepOptions{
		Workers: *workers,
		Shards:  *shards,
		Cell: experiment.CellOptions{
			Timeout:      *cellTimeout,
			StallTimeout: *stallTimeout,
			Retry: experiment.RetryPolicy{
				Attempts:  *retries,
				BaseDelay: 100 * time.Millisecond,
				MaxDelay:  5 * time.Second,
			},
		},
	}
	if *resume != "" {
		if err := os.MkdirAll(*resume, 0o755); err != nil {
			fatal(err)
		}
		opts.JournalPath = filepath.Join(*resume, *kind+".journal")
	}

	distributed := *execWorkers > 0 || *workerURLs != ""
	if *kind == "robust" {
		if distributed {
			fmt.Fprintln(os.Stderr, "sweep: -exec-workers/-worker-url apply to cell sweeps only; running robust in-process")
		}
		runRobust(ctx, cfg, opts, *asJSON, *outPath, stopProfile)
		return
	}
	if *kind == "mechanism" {
		var dispatch experiment.SweepDispatch
		if distributed {
			dc := distConfig{
				execWorkers:  *execWorkers,
				urls:         *workerURLs,
				lease:        *lease,
				chaos:        *chaosSpec,
				resumeDir:    *resume,
				localWorkers: *workers,
			}
			dispatch = func(ctx context.Context, points []experiment.SweepPoint, benchmark string,
				b, c core.Policy, o experiment.SweepOptions) ([]experiment.SweepResult, error) {
				return runDistributed(ctx, points, benchmark, b, c, o, dc)
			}
		}
		// -bench and -candidate narrow the matrix only when given
		// explicitly; their cell-sweep defaults would otherwise shrink
		// the default all-benchmarks × policy-ladder grid to one cell.
		var benchSet []string
		if explicit["bench"] {
			benchSet = []string{*bench}
		}
		var policies []core.Policy
		if explicit["candidate"] {
			policies = []core.Policy{candidate}
		}
		runMechanism(ctx, cfg, opts, benchSet, policies, baseline, *asJSON, *outPath, dispatch, stopProfile)
		return
	}

	var points []experiment.SweepPoint
	switch *kind {
	case "cache":
		// Capacity grows with associativity at fixed sets, exactly how
		// the paper grows its cache (Sec. IV-A3).
		for _, ways := range []int{16, 32, 48, 64, 96, 128} {
			c := cfg
			c.L2Ways = ways
			c.L2KB = cfg.L2KB / cfg.L2Ways * ways
			points = append(points, experiment.SweepPoint{
				Label: fmt.Sprintf("%d ways / %d KB", ways, c.L2KB), Cfg: c})
		}
	case "interval":
		for _, iv := range []uint64{50_000, 100_000, 200_000, 400_000, 800_000} {
			c := cfg
			c.IntervalInstructions = iv
			points = append(points, experiment.SweepPoint{
				Label: fmt.Sprintf("%dk instr", iv/1000), Cfg: c})
		}
	case "threads":
		for _, n := range []int{2, 4, 8, 16} {
			c := cfg.WithThreads(n)
			// Preserve the working-set-to-cache ratio as thread count
			// scales (see EXPERIMENTS.md on Fig. 22).
			c.L2KB = cfg.L2KB * n / cfg.NumThreads
			points = append(points, experiment.SweepPoint{
				Label: fmt.Sprintf("%d threads / %d KB", n, c.L2KB), Cfg: c})
		}
	default:
		fatal(fmt.Errorf("unknown sweep kind %q", *kind))
	}

	if opts.JournalPath != "" {
		if err := checkJournalMechanism(opts.JournalPath, points, *bench, baseline,
			candidate, opts.Shards, cfg.Mechanism); err != nil {
			fatal(err)
		}
	}

	var results []experiment.SweepResult
	if distributed {
		results, err = runDistributed(ctx, points, *bench, baseline, candidate, opts, distConfig{
			execWorkers:  *execWorkers,
			urls:         *workerURLs,
			lease:        *lease,
			chaos:        *chaosSpec,
			resumeDir:    *resume,
			localWorkers: *workers,
		})
	} else {
		results, err = experiment.SweepJournaled(ctx, points, *bench, baseline, candidate, opts)
	}
	if err != nil {
		reportInterrupted(err, opts.JournalPath)
		fatal(err)
	}
	cacheStats := experiment.TraceCacheStats()
	if *outPath != "" {
		if err := report.SaveJSON(*outPath, sweepOutput{Results: results, TraceCache: cacheStats}); err != nil {
			fatal(err)
		}
	}

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(sweepOutput{Results: results, TraceCache: cacheStats}); err != nil {
			fatal(err)
		}
	} else {
		t := report.NewTable(
			fmt.Sprintf("%s sweep on %q: %s vs %s", *kind, *bench, *candName, *baseName),
			"point", "baseline cycles", "dynamic cycles", "improvement %")
		for _, r := range results {
			if r.Err != nil {
				t.AddRow(r.Label, "-", "-", fmt.Sprintf("error (%s): %v", errKind(r), r.Err))
				continue
			}
			label := r.Label
			if r.Resumed {
				label += " (resumed)"
			}
			t.AddRow(label, r.BaselineCycles, r.DynamicCycles, r.ImprovementPct)
		}
		fmt.Print(t.String())
		printTraceCacheSummary(cacheStats)
	}

	if failed, kinds := failureSummary(results); failed > 0 {
		fmt.Fprintf(os.Stderr, "sweep: %d/%d cells failed (%s); partial results above\n",
			failed, len(results), kinds)
		stopProfile()
		os.Exit(exitPartial)
	}
}

// runWorker turns the process into a sweep worker: "stdio" serves the
// cell protocol on stdin/stdout (how -exec-workers coordinators drive
// it), anything else is an HTTP listen address.
//
// Both modes shut down gracefully on the first SIGINT/SIGTERM: the
// in-flight cell (if any) finishes, is journaled, and is replied to,
// the health probe flips to draining so coordinators stop dispatching,
// and the process exits 0. A second signal exits 1 immediately.
func runWorker(mode, journalPath, chaosSpec string) {
	drain := make(chan struct{})
	opts := dsweep.ServeOptions{
		JournalPath: journalPath,
		Drain:       drain,
		Log: func(format string, args ...interface{}) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
	}
	if chaosSpec != "" {
		plan, err := fault.ParseExecPlan(chaosSpec)
		if err != nil {
			fatal(err)
		}
		opts.Chaos = plan
	}

	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	hardExit := func() {
		<-sigs
		fmt.Fprintln(os.Stderr, "sweep: worker: second signal, exiting immediately")
		os.Exit(exitHard)
	}

	if mode == "stdio" {
		go func() {
			sig := <-sigs
			fmt.Fprintf(os.Stderr, "sweep: worker: %v: draining (again to kill)\n", sig)
			close(drain)
			hardExit()
		}()
		if err := dsweep.ServeStdio(context.Background(), opts); err != nil {
			fatal(err)
		}
		return
	}

	handler, err := dsweep.NewHandler(opts)
	if err != nil {
		fatal(err)
	}
	srv := &http.Server{Addr: mode, Handler: handler}
	go func() {
		sig := <-sigs
		fmt.Fprintf(os.Stderr, "sweep: worker: %v: draining (again to kill)\n", sig)
		// Flip the probe first so coordinators stop dispatching, then
		// let in-flight cells finish; cells legitimately run for
		// minutes, so the shutdown context carries no deadline — the
		// second-signal path is the escape hatch.
		handler.SetDraining(true)
		go hardExit()
		if err := srv.Shutdown(context.Background()); err != nil {
			fmt.Fprintln(os.Stderr, "sweep: worker shutdown:", err)
		}
	}()
	fmt.Fprintf(os.Stderr, "sweep: worker listening on %s\n", mode)
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fatal(err)
	}
}

// distConfig carries the distributed-mode flags into runDistributed.
type distConfig struct {
	execWorkers  int
	urls         string
	lease        time.Duration
	chaos        string
	resumeDir    string
	localWorkers int
}

// runDistributed shards the sweep's cells across worker processes via
// the dsweep coordinator and reports its accounting on stderr. Local
// subprocess workers journal next to the resume journal when -resume
// is set (so their work survives a coordinator crash too), otherwise
// in a temp directory that is cleaned up with the run.
func runDistributed(ctx context.Context, points []experiment.SweepPoint, bench string,
	baseline, candidate core.Policy, opts experiment.SweepOptions, dc distConfig) ([]experiment.SweepResult, error) {
	var pool []dsweep.Worker
	closeAll := func() {
		for _, w := range pool {
			w.Close()
		}
	}
	if dc.execWorkers > 0 {
		exe, err := os.Executable()
		if err != nil {
			return nil, err
		}
		dir := dc.resumeDir
		if dir == "" {
			dir, err = os.MkdirTemp("", "sweep-workers-")
			if err != nil {
				return nil, err
			}
			defer os.RemoveAll(dir)
		}
		// Worker journals are named after the coordinator journal so a
		// mechanism sweep's per-slice runDistributed calls (and sweeps of
		// different kinds sharing a -resume dir) never collide.
		prefix := "worker"
		if opts.JournalPath != "" {
			prefix = strings.TrimSuffix(filepath.Base(opts.JournalPath), ".journal") + "-worker"
		}
		for i := 0; i < dc.execWorkers; i++ {
			wj := filepath.Join(dir, fmt.Sprintf("%s%d.journal", prefix, i))
			argv := []string{exe, "-worker", "stdio", "-worker-journal", wj}
			if dc.chaos != "" {
				argv = append(argv, "-chaos", dc.chaos)
			}
			w, err := dsweep.StartExecWorker(dsweep.ExecWorkerSpec{
				Name:    fmt.Sprintf("exec%d", i),
				Argv:    argv,
				Journal: wj,
			})
			if err != nil {
				closeAll()
				return nil, err
			}
			pool = append(pool, w)
		}
	}
	for _, u := range strings.Split(dc.urls, ",") {
		if u = strings.TrimSpace(u); u != "" {
			pool = append(pool, &dsweep.HTTPWorker{BaseURL: strings.TrimRight(u, "/")})
		}
	}
	defer closeAll()

	results, stats, err := dsweep.Run(ctx, points, bench, baseline, candidate, dsweep.Options{
		Workers:      pool,
		JournalPath:  opts.JournalPath,
		Cell:         opts.Cell,
		Shards:       opts.Shards,
		LocalWorkers: dc.localWorkers,
		Lease:        dc.lease,
		Log: func(format string, args ...interface{}) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
	})
	if err != nil {
		return results, err
	}
	fmt.Fprintf(os.Stderr,
		"sweep: distributed: %d cells (%d resumed, %d computed, %d recovered, %d local), %d dispatches (%d re-dispatched), %d workers lost\n",
		stats.Cells, stats.Resumed, stats.Computed, stats.Recovered, stats.Local,
		stats.Dispatches, stats.Redispatches, stats.WorkersRetired)
	if len(stats.ErrKinds) > 0 {
		fmt.Fprintf(os.Stderr, "sweep: dispatch failures by kind: %s\n", kindCounts(stats.ErrKinds))
	}
	if stats.Degraded {
		fmt.Fprintln(os.Stderr, "sweep: degraded: cells ran in-process because no worker was reachable")
	}
	return results, nil
}

// errKind renders a result's taxonomy kind, defaulting the legacy
// in-process paths that predate classification.
func errKind(r experiment.SweepResult) string {
	if r.ErrKind != "" {
		return r.ErrKind
	}
	return experiment.CellErrorKind(r.Err)
}

// failureSummary counts failed cells and formats the taxonomy
// breakdown, e.g. `2 stalled, 1 worker-died`.
func failureSummary(results []experiment.SweepResult) (int, string) {
	kinds := map[string]int{}
	failed := 0
	for _, r := range results {
		if r.Err != nil {
			failed++
			kinds[errKind(r)]++
		}
	}
	return failed, kindCounts(kinds)
}

// kindCounts formats a kind->count map in the taxonomy's canonical
// order so summaries are stable run to run.
func kindCounts(kinds map[string]int) string {
	var parts []string
	for _, k := range []string{experiment.KindStalled, experiment.KindDeadline,
		experiment.KindWorkerDied, experiment.KindCorrupt,
		experiment.KindCancelled, experiment.KindFailed} {
		if n := kinds[k]; n > 0 {
			parts = append(parts, fmt.Sprintf("%d %s", n, k))
		}
	}
	return strings.Join(parts, ", ")
}

// sweepOutput is the -out / -json payload: the per-point results plus
// the shared trace cache's counters (all zero when -pipeline was off).
type sweepOutput struct {
	Results    []experiment.SweepResult
	TraceCache trace.CacheStats
}

// printTraceCacheSummary appends the shared trace cache's counters to
// the human-readable report when pipelining put anything through it.
func printTraceCacheSummary(st trace.CacheStats) {
	if st.Hits == 0 && st.Misses == 0 && st.Detaches == 0 {
		return
	}
	total := st.Hits + st.Misses
	pct := 0.0
	if total > 0 {
		pct = 100 * float64(st.Hits) / float64(total)
	}
	fmt.Printf("\ntrace cache: %d/%d segments served from cache (%.1f%%), "+
		"%d generated, %d detaches, %d evictions, %d entries / %.1f MiB resident\n",
		st.Hits, total, pct, st.Misses, st.Detaches, st.Evictions,
		st.Entries, float64(st.Bytes)/(1<<20))
}

// reportInterrupted tells the user how to pick the sweep back up when
// the error was a cancellation (ctrl-C / SIGTERM) rather than a real
// failure. Per-cell deadline errors don't count: those cells failed.
func reportInterrupted(err error, journalPath string) {
	if !errors.Is(err, context.Canceled) {
		return
	}
	if journalPath != "" {
		fmt.Fprintf(os.Stderr, "sweep: interrupted; finished cells are journaled in %s — rerun with the same flags to resume\n", journalPath)
	} else {
		fmt.Fprintln(os.Stderr, "sweep: interrupted; rerun with -resume DIR to make sweeps restartable")
	}
}

// runRobust sweeps policies × fault levels over all nine benchmarks.
// Any plan built from -fault-* flags is added as a fifth "custom"
// level on top of the canonical ladder. Exits exitPartial when some
// cells failed.
func runRobust(ctx context.Context, cfg experiment.Config, opts experiment.SweepOptions,
	asJSON bool, outPath string, stopProfile func()) {
	levels := experiment.DefaultFaultLevels()
	if cfg.Fault != nil {
		levels = append(levels, experiment.FaultLevel{Name: "custom", Plan: *cfg.Fault})
		cfg.Fault = nil
	}
	cells, err := experiment.RobustnessSweepJournaled(ctx, cfg, nil, nil, levels, opts)
	if err != nil {
		reportInterrupted(err, opts.JournalPath)
		fatal(err)
	}
	if outPath != "" {
		if err := report.SaveJSON(outPath, cells); err != nil {
			fatal(err)
		}
	}
	failed, kinds := 0, map[string]int{}
	for _, c := range cells {
		if c.Err != nil {
			failed++
			kinds[experiment.CellErrorKind(c.Err)]++
			fmt.Fprintf(os.Stderr, "sweep: %s/%s/%s: %v\n", c.Benchmark, c.Policy, c.Level, c.Err)
		}
	}
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(cells); err != nil {
			fatal(err)
		}
	} else {
		rows, cols, vals := experiment.RobustnessMatrix(cells)
		fmt.Print(report.Matrix(
			"robustness: mean improvement over clean shared cache (%), policies x fault levels",
			rows, cols, vals))
		fmt.Println()
		for _, level := range cols {
			hc := experiment.HealthCounts(cells, core.PolicyModelBased, level)
			fmt.Printf("model-based health at %-12s %v\n", level+":", hc)
		}
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "sweep: %d/%d cells failed (%s); partial results above\n",
			failed, len(cells), kindCounts(kinds))
		stopProfile()
		os.Exit(exitPartial)
	}
}

// runMechanism sweeps partitioning mechanisms × policies × benchmarks
// against the shared baseline and prints the comparison matrix plus a
// per-benchmark winner table. Each (benchmark, policy) slice journals
// separately under -resume; when workers are configured each slice is
// dispatched through the distributed coordinator.
func runMechanism(ctx context.Context, cfg experiment.Config, opts experiment.SweepOptions,
	benchmarks []string, policies []core.Policy, baseline core.Policy,
	asJSON bool, outPath string, dispatch experiment.SweepDispatch, stopProfile func()) {
	cells, err := experiment.MechanismSweep(ctx, experiment.MechanismSweepSpec{
		Cfg:        cfg,
		Benchmarks: benchmarks,
		Policies:   policies,
		Baseline:   baseline,
		Opts:       opts,
		Dispatch:   dispatch,
	})
	if err != nil {
		reportInterrupted(err, opts.JournalPath)
		fatal(err)
	}
	if outPath != "" {
		if err := report.SaveJSON(outPath, cells); err != nil {
			fatal(err)
		}
	}
	failed, kinds := 0, map[string]int{}
	for _, c := range cells {
		if c.Err != nil {
			failed++
			kinds[experiment.CellErrorKind(c.Err)]++
			fmt.Fprintf(os.Stderr, "sweep: %s/%s/%s: %v\n", c.Benchmark, c.Policy, c.Mechanism, c.Err)
		}
	}
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(cells); err != nil {
			fatal(err)
		}
	} else {
		rows, cols, vals := experiment.MechanismMatrix(cells)
		fmt.Print(report.ComparisonMatrix(
			"mechanisms: mean improvement over shared baseline (%), policies x mechanisms",
			rows, cols, vals))
		// Winner table under the strongest policy in the matrix.
		winner := core.PolicyModelBased
		present := map[core.Policy]bool{}
		for _, c := range cells {
			present[c.Policy] = true
		}
		if !present[winner] && len(cells) > 0 {
			winner = cells[0].Policy
		}
		if best := experiment.MechanismBestFor(cells, winner); len(best) > 0 {
			fmt.Println()
			printed := map[string]bool{}
			for _, c := range cells {
				if m, ok := best[c.Benchmark]; ok && !printed[c.Benchmark] {
					printed[c.Benchmark] = true
					fmt.Printf("best mechanism for %-8s %s (%s)\n", c.Benchmark+":", m, winner)
				}
			}
		}
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "sweep: %d/%d cells failed (%s); partial results above\n",
			failed, len(cells), kindCounts(kinds))
		stopProfile()
		os.Exit(exitPartial)
	}
}

// checkJournalMechanism turns the journal's generic fingerprint-
// mismatch error into a specific one when the mismatch is exactly the
// -mechanism flag: it re-fingerprints the sweep under each other
// mechanism and, on a match, says which geometry the journal was
// written under. Any other difference falls through to OpenJournal's
// generic refusal.
func checkJournalMechanism(path string, points []experiment.SweepPoint, bench string,
	baseline, candidate core.Policy, shards int, mech cache.Mechanism) error {
	have, err := checkpoint.JournalFingerprint(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return err
	}
	if experiment.SweepFingerprint(points, bench, baseline, candidate, shards) == have {
		return nil
	}
	for _, m := range cache.Mechanisms() {
		if m == mech {
			continue
		}
		alt := make([]experiment.SweepPoint, len(points))
		for i, p := range points {
			alt[i] = p
			alt[i].Cfg = p.Cfg.WithMechanism(m)
		}
		if experiment.SweepFingerprint(alt, bench, baseline, candidate, shards) == have {
			return fmt.Errorf("journal %s was written with -mechanism %s, not %s; rerun with -mechanism %s or point -resume at a fresh directory",
				path, m, mech, m)
		}
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sweep:", err)
	os.Exit(1)
}
