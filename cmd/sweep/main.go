// Command sweep runs parameter sensitivity sweeps of the dynamic
// partitioner against a baseline: cache size, interval length, or
// thread count. Points run in parallel (simulations are independent
// and deterministic).
//
// Usage:
//
//	sweep -kind cache    -bench cg          # L2 capacity sweep
//	sweep -kind interval -bench swim        # execution-interval sweep
//	sweep -kind threads  -bench mgrid       # core-count sweep
//	sweep -kind cache -json                 # machine-readable output
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"intracache/internal/core"
	"intracache/internal/experiment"
	"intracache/internal/report"
)

func main() {
	kind := flag.String("kind", "cache", "sweep kind: cache, interval, threads")
	bench := flag.String("bench", "cg", "benchmark to sweep")
	baseName := flag.String("baseline", "shared", "baseline policy")
	candName := flag.String("candidate", "model-based", "candidate policy")
	sections := flag.Int("sections", 40, "fixed work per run (parallel sections)")
	workers := flag.Int("workers", 0, "parallel workers (0 = GOMAXPROCS)")
	asJSON := flag.Bool("json", false, "emit JSON instead of a table")
	flag.Parse()

	baseline, err := core.ParsePolicy(*baseName)
	if err != nil {
		fatal(err)
	}
	candidate, err := core.ParsePolicy(*candName)
	if err != nil {
		fatal(err)
	}

	cfg := experiment.DefaultConfig()
	cfg.Sections = *sections

	var points []experiment.SweepPoint
	switch *kind {
	case "cache":
		// Capacity grows with associativity at fixed sets, exactly how
		// the paper grows its cache (Sec. IV-A3).
		for _, ways := range []int{16, 32, 48, 64, 96, 128} {
			c := cfg
			c.L2Ways = ways
			c.L2KB = cfg.L2KB / cfg.L2Ways * ways
			points = append(points, experiment.SweepPoint{
				Label: fmt.Sprintf("%d ways / %d KB", ways, c.L2KB), Cfg: c})
		}
	case "interval":
		for _, iv := range []uint64{50_000, 100_000, 200_000, 400_000, 800_000} {
			c := cfg
			c.IntervalInstructions = iv
			points = append(points, experiment.SweepPoint{
				Label: fmt.Sprintf("%dk instr", iv/1000), Cfg: c})
		}
	case "threads":
		for _, n := range []int{2, 4, 8, 16} {
			c := cfg.WithThreads(n)
			// Preserve the working-set-to-cache ratio as thread count
			// scales (see EXPERIMENTS.md on Fig. 22).
			c.L2KB = cfg.L2KB * n / cfg.NumThreads
			points = append(points, experiment.SweepPoint{
				Label: fmt.Sprintf("%d threads / %d KB", n, c.L2KB), Cfg: c})
		}
	default:
		fatal(fmt.Errorf("unknown sweep kind %q", *kind))
	}

	results, err := experiment.Sweep(points, *bench, baseline, candidate, *workers)
	if err != nil {
		fatal(err)
	}

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(results); err != nil {
			fatal(err)
		}
		return
	}
	t := report.NewTable(
		fmt.Sprintf("%s sweep on %q: %s vs %s", *kind, *bench, *candName, *baseName),
		"point", "baseline cycles", "dynamic cycles", "improvement %")
	for _, r := range results {
		t.AddRow(r.Label, r.BaselineCycles, r.DynamicCycles, r.ImprovementPct)
	}
	fmt.Print(t.String())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sweep:", err)
	os.Exit(1)
}
