// Command intracache runs one benchmark under one cache-management
// policy and prints the interval-by-interval trace plus a summary.
//
// Usage:
//
//	intracache -bench cg -policy model-based
//	intracache -bench swim -policy shared -intervals 50
//	intracache -bench mgrid -policy model-based -threads 8 -trace=false
//	intracache -list
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"intracache"
	"intracache/internal/profiling"
	"intracache/internal/report"
)

func main() {
	bench := flag.String("bench", "cg", "benchmark profile name")
	policyName := flag.String("policy", "model-based", "cache policy")
	threads := flag.Int("threads", 4, "number of threads/cores")
	intervals := flag.Int("intervals", 0, "run length in execution intervals (0 = config default)")
	sections := flag.Int("sections", 0, "run length in parallel sections instead of intervals")
	seed := flag.Uint64("seed", 42, "workload random seed")
	l2kb := flag.Int("l2kb", 0, "L2 size in KiB (0 = default 256)")
	l2ways := flag.Int("l2ways", 0, "L2 associativity (0 = default 64)")
	mechName := flag.String("mechanism", "ways", "L2 partitioning mechanism: ways, sets, cluster")
	setGroups := flag.Int("set-groups", 0, "sets mechanism: number of set groups (0 = cache default)")
	clusters := flag.Int("clusters", 0, "cluster mechanism: number of set clusters (0 = cache default)")
	intervalInstr := flag.Uint64("interval-instr", 0, "aggregate instructions per execution interval (0 = default)")
	showTrace := flag.Bool("trace", true, "print the per-interval trace")
	asJSON := flag.Bool("json", false, "emit the full result as JSON and exit")
	list := flag.Bool("list", false, "list benchmarks and policies, then exit")
	ckptPath := flag.String("checkpoint", "", "checkpoint file: run state is saved here atomically so the run survives kills")
	ckptEvery := flag.Int("checkpoint-every", 0, "snapshot every N completed intervals (0 = only when stopping)")
	resumeRun := flag.Bool("resume", false, "resume from -checkpoint if the file exists (bit-identical to an uninterrupted run)")
	faultSeed := flag.Uint64("fault-seed", 1, "fault injection random seed")
	faultCPINoise := flag.Float64("fault-cpi-noise", 0, "multiplicative CPI counter noise, e.g. 0.1 for ±10%")
	faultAddNoise := flag.Float64("fault-add-noise", 0, "additive counter noise in cycles per instruction")
	faultDrop := flag.Float64("fault-drop", 0, "probability of losing a whole sampling interval")
	faultStuck := flag.Float64("fault-stuck", 0, "per-thread probability of a stuck-counter repeat")
	faultDelay := flag.Int("fault-delay", 0, "repartition decisions applied this many intervals late")
	faultStall := flag.Float64("fault-stall", 0, "per-thread probability of a transient apparent stall")
	pipeline := flag.Bool("pipeline", false, "pipelined trace generation: overlap generation with simulation (bit-identical results)")
	parallelGen := flag.Int("parallel-gen", 0, "generate each thread's trace on this many goroutines (bit-identical results; implies -pipeline)")
	shards := flag.Int("shards", 0, "split the run into this many time shards simulated in parallel (changes results; 0/1 = off)")
	shardWorkers := flag.Int("shard-workers", 0, "worker pool for -shards (0 = one per shard; never changes results)")
	traceCacheMB := flag.Int("trace-cache-mb", 0, "segment-cache budget in MiB for -pipeline (0 = default 256, negative = no sharing)")
	pprofPath := flag.String("pprof", "", "write a CPU profile of the run to this file")
	flag.Parse()

	stopProfile := profiling.MustStartCPU(*pprofPath)
	defer stopProfile()

	if *list {
		fmt.Println("benchmarks:", strings.Join(intracache.Benchmarks(), ", "))
		names := make([]string, 0, 6)
		for _, p := range intracache.Policies() {
			names = append(names, p.String())
		}
		fmt.Println("policies:  ", strings.Join(names, ", "))
		mechs := make([]string, 0, 3)
		for _, m := range intracache.Mechanisms() {
			mechs = append(mechs, m.String())
		}
		fmt.Println("mechanisms:", strings.Join(mechs, ", "))
		return
	}

	pol, err := intracache.ParsePolicy(*policyName)
	if err != nil {
		fatal(err)
	}
	cfg := intracache.DefaultConfig()
	if *threads != cfg.NumThreads {
		cfg = cfg.WithThreads(*threads)
	}
	cfg.Seed = *seed
	if *l2kb > 0 {
		cfg.L2KB = *l2kb
	}
	if *l2ways > 0 {
		cfg.L2Ways = *l2ways
	}
	mech, err := intracache.ParseMechanism(*mechName)
	if err != nil {
		fatal(err)
	}
	cfg.Mechanism = mech
	cfg.SetGroups = *setGroups
	cfg.Clusters = *clusters
	if *intervalInstr > 0 {
		cfg.IntervalInstructions = *intervalInstr
	}
	mode := intracache.ByIntervals
	if *sections > 0 {
		cfg.Sections = *sections
		mode = intracache.BySections
	} else if *intervals > 0 {
		cfg.Intervals = *intervals
	}
	plan := intracache.FaultPlan{
		Seed:          *faultSeed,
		CPINoise:      *faultCPINoise,
		CPIAddNoise:   *faultAddNoise,
		DropRate:      *faultDrop,
		StuckRate:     *faultStuck,
		DecisionDelay: *faultDelay,
		StallRate:     *faultStall,
	}
	if !plan.IsZero() {
		cfg.Fault = &plan
	}
	cfg.Pipeline = *pipeline
	cfg.ParallelGen = *parallelGen
	cfg.TraceCacheMB = *traceCacheMB
	if err := cfg.Validate(); err != nil {
		fatal(err)
	}

	// ctrl-C / SIGTERM stops the run at the next interval boundary; with
	// -checkpoint set, the stop state is saved there for -resume.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	ckpt := intracache.CheckpointSpec{
		Path:   *ckptPath,
		Every:  *ckptEvery,
		Resume: *resumeRun,
	}
	var run intracache.Run
	if *shards > 1 {
		run, err = intracache.SimulateSharded(ctx, cfg, *bench, pol, mode, intracache.ShardSpec{
			Shards:     *shards,
			Workers:    *shardWorkers,
			Checkpoint: ckpt,
		})
	} else {
		run, err = intracache.SimulateCheckpointed(ctx, cfg, *bench, pol, mode, ckpt)
	}
	if errors.Is(err, context.Canceled) {
		if *ckptPath != "" {
			fmt.Fprintf(os.Stderr, "intracache: interrupted after %d intervals; state saved to %s — rerun with -resume to continue\n",
				len(run.Result.Intervals), *ckptPath)
		} else {
			fmt.Fprintln(os.Stderr, "intracache: interrupted (rerun with -checkpoint FILE to make runs resumable)")
		}
		stopProfile()
		os.Exit(130)
	}
	if err != nil {
		fatal(err)
	}

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(struct {
			Benchmark string
			Policy    string
			Threads   int
			Faults    *intracache.FaultStats `json:",omitempty"`
			Result    intracache.Result
		}{run.Benchmark, run.Policy.String(), cfg.NumThreads, run.FaultStats, run.Result}); err != nil {
			fatal(err)
		}
		return
	}

	if *showTrace {
		unit := "ways"
		if cfg.Mechanism != intracache.MechWays {
			unit = "quanta" // set groups or per-cluster way quanta
		}
		t := report.NewTable(
			fmt.Sprintf("%s under %s — per-interval trace", *bench, pol),
			traceHeaders(cfg.NumThreads, unit)...)
		for _, iv := range run.Result.Intervals {
			cells := []interface{}{iv.Index}
			for _, ts := range iv.Threads {
				cells = append(cells, fmt.Sprintf("%d/%.2f", ts.WaysAssigned, ts.CPI()))
			}
			cells = append(cells, iv.OverallCPI())
			t.AddRow(cells...)
		}
		fmt.Print(t.String())
		fmt.Println()
	}

	res := run.Result
	fmt.Printf("benchmark:          %s\n", run.Benchmark)
	fmt.Printf("policy:             %s\n", run.Policy)
	if cfg.Mechanism != intracache.MechWays {
		fmt.Printf("mechanism:          %s\n", cfg.Mechanism)
	}
	fmt.Printf("threads:            %d\n", cfg.NumThreads)
	fmt.Printf("wall cycles:        %d\n", res.WallCycles)
	fmt.Printf("instructions:       %d\n", res.TotalInstr)
	fmt.Printf("application CPI:    %.3f\n", res.AppCPI())
	fmt.Printf("barriers crossed:   %d\n", res.Barriers)
	tot := res.L2Stats.Totals()
	fmt.Printf("L2 accesses:        %d (hit rate %.1f%%)\n", tot.Accesses,
		100*float64(tot.Hits)/max1(float64(tot.Accesses)))
	fmt.Printf("inter-thread:       %.2f%% of accesses (%.1f%% constructive)\n",
		100*res.L2Stats.InterThreadInteractionFraction(),
		100*res.L2Stats.ConstructiveFraction())
	if res.FinalTargets != nil {
		fmt.Printf("final way targets:  %v\n", res.FinalTargets)
	}
	if res.ControllerHealth != "" {
		fmt.Printf("controller health:  %s\n", res.ControllerHealth)
	}
	if fs := run.FaultStats; fs != nil {
		fmt.Printf("faults injected:    plan %s over %d intervals "+
			"(noisy=%d dropped=%d stuck=%d stalls=%d delayed=%d)\n",
			cfg.Fault.String(), fs.Intervals,
			fs.NoisySamples, fs.DroppedIntervals, fs.StuckSamples, fs.Stalls, fs.DelayedDecisions)
	}
	for tdx := range res.ThreadCycles {
		fmt.Printf("  thread %d: instr=%d stall=%.1f%%\n", tdx,
			res.ThreadInstr[tdx],
			100*float64(res.ThreadStall[tdx])/max1(float64(res.ThreadCycles[tdx])))
	}
}

func traceHeaders(n int, unit string) []string {
	out := []string{"interval"}
	for i := 0; i < n; i++ {
		out = append(out, fmt.Sprintf("t%d %s/CPI", i+1, unit))
	}
	return append(out, "overall CPI")
}

func max1(x float64) float64 {
	if x < 1 {
		return 1
	}
	return x
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "intracache:", err)
	os.Exit(1)
}
