// Command partitiond runs the paper's partitioning runtime as a
// persistent daemon: telemetry agents POST per-application counter
// batches (JSON sealed in the checkpoint CRC64 envelope) to /ingest, a
// ticker drives one decision round per tick across every session, and
// /alloc serves the resulting per-thread way allocations. Each
// application gets its own core.ResilientEngine, so one application's
// garbage telemetry degrades that application's rung — never a
// neighbour's.
//
// Usage:
//
//	partitiond -listen :9444                        # serve
//	partitiond -listen :9444 -checkpoint p.ckpt     # crash-safe serve
//	partitiond -listen :9444 -shards 8              # 8 parallel tick domains
//	partitiond -selftest -apps 1000                 # load/soak harness
//
// -shards N hashes applications over N independent tick/checkpoint
// domains ticked concurrently by -tick-workers workers; per-session
// decisions are bit-identical to -shards 1 (the selftest verifies it).
// Checkpoints become one manifest plus one file per shard, and a
// manifest only restores at the shard count that wrote it.
//
// Serving endpoints: POST /ingest, GET /alloc?app= (add &watch=1&epoch=N
// to long-poll for the next allocation change), GET /stats,
// GET /healthz, GET /readyz. SIGINT/SIGTERM starts a drain: /healthz
// flips to 503 "draining", new batches are rejected, in-flight
// requests finish, queued samples get a final decision tick, state is
// checkpointed, and the process exits 0. A second signal exits 1
// immediately.
//
// -selftest replays a deterministic fleet of simulated applications
// (internal/service/loadgen) against an in-process service, with
// seeded telemetry-fault injection and an optional mid-run
// kill/restart, and checks the run against the declared SLO.
//
// Exit codes mirror sweep's convention: 0 success, 3 degraded — the
// selftest finished but breached its SLO or the restart differential
// diverged — and 1 on hard errors.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"intracache/internal/fault"
	"intracache/internal/report"
	"intracache/internal/service"
	"intracache/internal/service/loadgen"
)

// Exit codes (documented in README.md).
const (
	exitOK       = 0
	exitHard     = 1
	exitDegraded = 3 // selftest ran to completion but breached its SLO
)

func main() {
	listen := flag.String("listen", ":9444", "HTTP listen address")
	maxSessions := flag.Int("max-sessions", 0, "admission cap on concurrent application sessions (0 = 4096)")
	queueCap := flag.Int("queue-cap", 0, "per-session pending-sample cap; overflow drops oldest (0 = 64)")
	samplesPerTick := flag.Int("samples-per-tick", 0, "max samples one tick feeds one session's engine (0 = 8)")
	highWater := flag.Int("pressure-highwater", 0, "queue length that trips the last-good pressure rung (0 = queue-cap)")
	tick := flag.Duration("tick", time.Second, "decision tick period")
	deadline := flag.Duration("deadline", 0, "per-tick decision budget; past it, remaining sessions get last-good (0 = unbounded)")
	ckptPath := flag.String("checkpoint", "", "checkpoint file: restored on start if present, written on drain and every -checkpoint-every ticks")
	ckptEvery := flag.Int("checkpoint-every", 60, "checkpoint every N ticks when -checkpoint is set (0 = only on drain)")
	shards := flag.Int("shards", 1, "independent tick/checkpoint domains; apps are hashed to shards, so a checkpoint only restores at the shard count that wrote it")
	tickWorkers := flag.Int("tick-workers", 0, "concurrent shard tick workers (0 = min(shards, GOMAXPROCS))")

	selftest := flag.Bool("selftest", false, "run the deterministic load harness instead of serving")
	apps := flag.Int("apps", 1000, "selftest: concurrent simulated applications")
	steps := flag.Int("steps", 24, "selftest: fleet steps (one batch per app + one tick each)")
	threads := flag.Int("threads", 4, "selftest: threads per application")
	ways := flag.Int("ways", 16, "selftest: cache ways per application")
	seed := flag.Uint64("seed", 20260808, "selftest: master seed for fleet and fault streams")
	faultCPINoise := flag.Float64("fault-cpi-noise", 0, "selftest: multiplicative CPI counter noise for the faulted subset")
	faultDrop := flag.Float64("fault-drop", 0, "selftest: whole-interval sample-loss probability for the faulted subset")
	faultStuck := flag.Float64("fault-stuck", 0, "selftest: stuck-counter probability for the faulted subset")
	faultFraction := flag.Float64("fault-fraction", 0, "selftest: fraction of the fleet whose telemetry is fault-injected")
	burstEvery := flag.Int("burst-every", 0, "selftest: send oversized batches every N steps (0 = never)")
	sloP99 := flag.Duration("slo-p99", 100*time.Millisecond, "selftest: fail (exit 3) when p99 decision latency exceeds this")
	killStep := flag.Int("kill-step", 0, "selftest: checkpoint+restart the service after this step and verify decisions match an unkilled run (0 = off)")
	asJSON := flag.Bool("json", false, "selftest: emit the report as JSON")
	outPath := flag.String("out", "", "selftest: also write the report as JSON to this file (atomic write)")
	flag.Parse()

	opts := service.Options{
		MaxSessions:       *maxSessions,
		QueueCap:          *queueCap,
		MaxSamplesPerTick: *samplesPerTick,
		PressureHighWater: *highWater,
		Log: func(format string, args ...interface{}) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
	}

	if *selftest {
		os.Exit(runSelftest(selftestConfig{
			opts: opts, apps: *apps, steps: *steps, threads: *threads, ways: *ways,
			seed: *seed, deadline: *deadline, sloP99: *sloP99, killStep: *killStep,
			burstEvery: *burstEvery, asJSON: *asJSON, outPath: *outPath,
			shards: *shards, tickWorkers: *tickWorkers,
			plan: fault.Plan{
				CPINoise:  *faultCPINoise,
				DropRate:  *faultDrop,
				StuckRate: *faultStuck,
			},
			faultFraction: *faultFraction,
		}))
	}
	os.Exit(serve(*listen, opts, *shards, *tickWorkers, *tick, *deadline, *ckptPath, *ckptEvery, nil))
}

// serve runs the daemon until a signal drains it. Returns the exit
// code. bound, when non-nil, receives the actual listen address once
// the socket is open (tests bind port 0).
//
// The daemon always runs the sharded backend; -shards 1 is one domain
// and restores pre-shard checkpoints unchanged, while -shards N>1
// writes per-shard checkpoint files under one manifest and restores
// them concurrently (a manifest from a different -shards is refused).
func serve(listen string, opts service.Options, shards, tickWorkers int, tick, deadline time.Duration,
	ckptPath string, ckptEvery int, bound chan<- string) int {
	svc := service.NewSharded(opts, shards, tickWorkers)
	if ckptPath != "" {
		if _, err := os.Stat(ckptPath); err == nil {
			if err := svc.LoadCheckpoint(ckptPath); err != nil {
				fmt.Fprintln(os.Stderr, "partitiond: restoring checkpoint:", err)
				return exitHard
			}
			st := svc.SnapshotStats()
			fmt.Fprintf(os.Stderr, "partitiond: restored %d sessions (tick %d) from %s\n",
				st.Sessions, st.Ticks, ckptPath)
		}
	}
	handler, err := service.NewServer(svc)
	if err != nil {
		fmt.Fprintln(os.Stderr, "partitiond:", err)
		return exitHard
	}
	srv := &http.Server{Addr: listen, Handler: handler}

	// The ticker goroutine is the only caller of Tick; stopping it (done
	// below, before the final flush) keeps drain ordering simple.
	tickerCtx, stopTicker := context.WithCancel(context.Background())
	tickerDone := make(chan struct{})
	go func() {
		defer close(tickerDone)
		tk := time.NewTicker(tick)
		defer tk.Stop()
		n := 0
		for {
			select {
			case <-tickerCtx.Done():
				return
			case <-tk.C:
				svc.Tick(deadline)
				n++
				if ckptPath != "" && ckptEvery > 0 && n%ckptEvery == 0 {
					if err := svc.SaveCheckpoint(ckptPath); err != nil {
						fmt.Fprintln(os.Stderr, "partitiond: checkpoint:", err)
					}
				}
			}
		}
	}()

	ln, err := net.Listen("tcp", listen)
	if err != nil {
		stopTicker()
		<-tickerDone
		fmt.Fprintln(os.Stderr, "partitiond:", err)
		return exitHard
	}
	if bound != nil {
		bound <- ln.Addr().String()
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	handler.SetReady(true)
	fmt.Fprintf(os.Stderr, "partitiond: listening on %s (tick %v, deadline %v, %d shards)\n",
		ln.Addr(), tick, deadline, svc.NumShards())

	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	// Unregister on every exit path so a leftover second-signal watcher
	// from this serve can never fire on a later process signal (the
	// in-process restart test runs serve twice).
	defer signal.Stop(sigs)

	select {
	case err := <-serveErr:
		stopTicker()
		<-tickerDone
		fmt.Fprintln(os.Stderr, "partitiond:", err)
		return exitHard
	case sig := <-sigs:
		fmt.Fprintf(os.Stderr, "partitiond: %v: draining (again to kill)\n", sig)
	}

	// Drain: refuse new batches (healthz flips to 503 so load balancers
	// stop sending), wake every parked /alloc?watch=1 long-poll with an
	// immediate 204 (StartDraining closes the watch drain channel, so
	// Shutdown never waits out idle poll windows), finish in-flight
	// requests, flush queued samples through one final unbounded tick,
	// checkpoint, exit.
	svc.StartDraining()
	go func() {
		<-sigs
		fmt.Fprintln(os.Stderr, "partitiond: second signal, exiting immediately")
		os.Exit(exitHard)
	}()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		fmt.Fprintln(os.Stderr, "partitiond: shutdown:", err)
	}
	stopTicker()
	<-tickerDone
	svc.Tick(0) // final flush of queued samples, no deadline
	if ckptPath != "" {
		if err := svc.SaveCheckpoint(ckptPath); err != nil {
			fmt.Fprintln(os.Stderr, "partitiond: final checkpoint:", err)
			return exitHard
		}
	}
	st := svc.SnapshotStats()
	fmt.Fprintf(os.Stderr, "partitiond: drained: %d sessions, %d decisions, %d samples ingested\n",
		st.Sessions, st.Decisions, st.SamplesAccepted)
	return exitOK
}

// selftestConfig carries the -selftest flags into runSelftest.
type selftestConfig struct {
	opts          service.Options
	apps, steps   int
	threads, ways int
	seed          uint64
	plan          fault.Plan
	faultFraction float64
	burstEvery    int
	deadline      time.Duration
	sloP99        time.Duration
	killStep      int
	shards        int
	tickWorkers   int
	asJSON        bool
	outPath       string
}

// selftestReport is the -selftest output payload.
type selftestReport struct {
	Report          loadgen.Report
	SLOP99          time.Duration
	SLOBreached     bool
	RestartVerified bool
	RestartDiverged bool
	// ShardsVerified/ShardsDiverged report the -shards N>1 differential:
	// every app's decision stream compared against an unsharded run of
	// the same fleet.
	ShardsVerified bool
	ShardsDiverged bool
}

// runSelftest executes the load harness and grades the run. Returns
// the process exit code.
func runSelftest(c selftestConfig) int {
	hc := loadgen.HarnessConfig{
		Load: loadgen.Config{
			Apps:          c.apps,
			Threads:       c.threads,
			Ways:          c.ways,
			Seed:          c.seed,
			Fault:         c.plan,
			FaultFraction: c.faultFraction,
			BurstEvery:    c.burstEvery,
		},
		Service:     c.opts,
		Steps:       c.steps,
		Deadline:    c.deadline,
		Shards:      c.shards,
		TickWorkers: c.tickWorkers,
	}
	rep, decisions, err := loadgen.Run(hc)
	if err != nil {
		fmt.Fprintln(os.Stderr, "partitiond: selftest:", err)
		return exitHard
	}
	out := selftestReport{Report: rep, SLOP99: c.sloP99}

	if c.shards > 1 && c.deadline == 0 {
		// Shard differential: the same fleet against the unsharded
		// service must yield byte-identical per-app decision streams
		// (the global interleaving legitimately differs, so the compare
		// is per app).
		uhc := hc
		uhc.Shards, uhc.TickWorkers = 0, 0
		_, udecisions, err := loadgen.Run(uhc)
		if err != nil {
			fmt.Fprintln(os.Stderr, "partitiond: selftest (unsharded differential):", err)
			return exitHard
		}
		out.ShardsVerified = true
		byS, byU := loadgen.DecisionsByApp(decisions), loadgen.DecisionsByApp(udecisions)
		if len(byS) != len(byU) {
			out.ShardsDiverged = true
		}
		for app, ds := range byS {
			if !service.DecisionsEqual(ds, byU[app]) {
				out.ShardsDiverged = true
				fmt.Fprintf(os.Stderr, "partitiond: selftest: app %s diverged between -shards %d and unsharded\n", app, c.shards)
				break
			}
		}
	}

	if c.killStep > 0 {
		// The differential needs an exact decision comparison, which the
		// wall-clock deadline would break; refuse the combination rather
		// than report a spurious divergence.
		if c.deadline > 0 {
			fmt.Fprintln(os.Stderr, "partitiond: selftest: -kill-step requires -deadline 0 (the differential is exact)")
			return exitHard
		}
		khc := hc
		khc.KillAtStep = c.killStep
		dir, err := os.MkdirTemp("", "partitiond-selftest-")
		if err != nil {
			fmt.Fprintln(os.Stderr, "partitiond: selftest:", err)
			return exitHard
		}
		defer os.RemoveAll(dir)
		khc.CheckpointPath = dir + "/selftest.ckpt"
		krep, kdecisions, err := loadgen.Run(khc)
		if err != nil {
			fmt.Fprintln(os.Stderr, "partitiond: selftest (kill/restart):", err)
			return exitHard
		}
		out.RestartVerified = krep.Restarted
		out.RestartDiverged = !service.DecisionsEqual(decisions, kdecisions)
	}
	out.SLOBreached = rep.P99 > c.sloP99

	if c.outPath != "" {
		if err := report.SaveJSON(c.outPath, out); err != nil {
			fmt.Fprintln(os.Stderr, "partitiond: selftest:", err)
			return exitHard
		}
	}
	if c.asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, "partitiond: selftest:", err)
			return exitHard
		}
	} else {
		printSelftest(out)
	}

	switch {
	case out.SLOBreached:
		fmt.Fprintf(os.Stderr, "partitiond: selftest: p99 %v breaches SLO %v\n", rep.P99, c.sloP99)
		return exitDegraded
	case out.RestartDiverged:
		fmt.Fprintln(os.Stderr, "partitiond: selftest: post-restart decisions diverged from the unkilled run")
		return exitDegraded
	case out.ShardsDiverged:
		fmt.Fprintln(os.Stderr, "partitiond: selftest: sharded decisions diverged from the unsharded run")
		return exitDegraded
	}
	return exitOK
}

// printSelftest renders the human-readable selftest report.
func printSelftest(out selftestReport) {
	rep := out.Report
	t := report.NewTable(
		fmt.Sprintf("partitiond selftest: %d apps x %d steps", rep.Apps, rep.Steps),
		"metric", "value")
	t.AddRow("decisions", rep.Decisions)
	t.AddRow("wall", rep.Wall.Round(time.Millisecond).String())
	t.AddRow("alloc rate (dec/s)", fmt.Sprintf("%.0f", rep.AllocRatePerSec))
	t.AddRow("decision p50", rep.P50.String())
	t.AddRow("decision p99", fmt.Sprintf("%v (SLO %v)", rep.P99, out.SLOP99))
	t.AddRow("samples ingested", rep.Stats.SamplesAccepted)
	t.AddRow("dropped oldest / pressure", fmt.Sprintf("%d / %d", rep.Stats.DroppedOldest, rep.Stats.DroppedPressure))
	t.AddRow("rung model/prop/static", fmt.Sprintf("%d / %d / %d",
		rep.Stats.RungModel, rep.Stats.RungProportional, rep.Stats.RungStatic))
	t.AddRow("last-good deadline/pressure", fmt.Sprintf("%d / %d",
		rep.Stats.LastGoodDeadline, rep.Stats.LastGoodPressure))
	t.AddRow("engine demotions/promotions", fmt.Sprintf("%d / %d",
		rep.Stats.EngineDemotions, rep.Stats.EnginePromotions))
	t.AddRow("engine rejected samples", rep.Stats.EngineRejectedSamples)
	if out.RestartVerified {
		verdict := "identical to unkilled run"
		if out.RestartDiverged {
			verdict = "DIVERGED from unkilled run"
		}
		t.AddRow("kill/restart decisions", verdict)
	}
	if out.ShardsVerified {
		verdict := "identical to unsharded run"
		if out.ShardsDiverged {
			verdict = "DIVERGED from unsharded run"
		}
		t.AddRow("sharded decisions", verdict)
	}
	fmt.Print(t.String())
}
