package main

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"intracache/internal/service"
	"intracache/internal/sim"
)

// smokeBatch builds a small healthy batch for the daemon tests.
func smokeBatch(app string, jitter uint64) service.Batch {
	b := service.Batch{App: app, Threads: 2, Ways: 8}
	for i := uint64(0); i < 4; i++ {
		b.Samples = append(b.Samples, service.Sample{Threads: []sim.ThreadIntervalStats{
			{Instructions: 100_000, ActiveCycles: 150_000 + (jitter+i)*777, L2Accesses: 500, L2Hits: 400, L2Misses: 100 + i},
			{Instructions: 100_000, ActiveCycles: 250_000 + (jitter+i)*333, L2Accesses: 800, L2Hits: 500, L2Misses: 300 + i},
		}})
	}
	return b
}

func postBatch(t *testing.T, base string, b service.Batch) service.IngestReply {
	t.Helper()
	body, err := service.SealJSON(b)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/ingest", "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var reply service.IngestReply
	if err := service.UnsealJSON(data, &reply); err != nil {
		t.Fatalf("code %d body %q: %v", resp.StatusCode, data, err)
	}
	return reply
}

// TestServeDrainAndRestart runs the daemon loop in-process: ingest a
// batch over HTTP, SIGTERM it, and check the drain contract — exit 0,
// queued samples flushed through a final decision, checkpoint written
// — then restart from the checkpoint and confirm the session survived.
func TestServeDrainAndRestart(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "pd.ckpt")
	run := func(ingest bool) int {
		bound := make(chan string, 1)
		exit := make(chan int, 1)
		go func() {
			exit <- serve("127.0.0.1:0", service.Options{}, 1, 0, 20*time.Millisecond, 0, ckpt, 0, bound)
		}()
		base := "http://" + <-bound
		if ingest {
			if rep := postBatch(t, base, smokeBatch("web-01", 1)); rep.Accepted != 4 {
				t.Fatalf("ingest: %+v", rep)
			}
		} else {
			// The restarted daemon must have restored the session.
			deadline := time.Now().Add(2 * time.Second)
			for {
				resp, err := http.Get(base + "/alloc?app=web-01")
				if err == nil {
					resp.Body.Close()
					if resp.StatusCode == http.StatusOK {
						break
					}
					t.Fatalf("restored daemon: /alloc -> %d", resp.StatusCode)
				}
				if time.Now().After(deadline) {
					t.Fatal("restored daemon never answered /alloc")
				}
				time.Sleep(10 * time.Millisecond)
			}
		}
		if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
			t.Fatal(err)
		}
		select {
		case code := <-exit:
			return code
		case <-time.After(10 * time.Second):
			t.Fatal("daemon did not drain within 10s of SIGTERM")
			return -1
		}
	}

	if code := run(true); code != exitOK {
		t.Fatalf("first daemon exit=%d, want %d", code, exitOK)
	}
	if _, err := os.Stat(ckpt); err != nil {
		t.Fatalf("drain wrote no checkpoint: %v", err)
	}
	// The checkpoint must carry the session with its queued samples
	// already flushed to a decision by the final drain tick.
	svc := service.New(service.Options{})
	if err := svc.LoadCheckpoint(ckpt); err != nil {
		t.Fatal(err)
	}
	alloc, ok := svc.Allocation("web-01")
	if !ok {
		t.Fatal("checkpoint lost the session")
	}
	if alloc.Queued != 0 || alloc.Interval != 4 {
		t.Fatalf("drain left unflushed samples: %+v", alloc)
	}
	if code := run(false); code != exitOK {
		t.Fatalf("restarted daemon exit=%d, want %d", code, exitOK)
	}
}

// TestServeShardedDrainAndRestart runs the daemon at -shards 4: ingest
// over HTTP routes to the owning shard, a watch long-poll is answered
// by the ticker's next decision, SIGTERM drains into per-shard
// checkpoint files under one manifest, and a restarted daemon at the
// same shard count restores the session.
func TestServeShardedDrainAndRestart(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "pd.ckpt")
	run := func(ingest bool) int {
		bound := make(chan string, 1)
		exit := make(chan int, 1)
		go func() {
			exit <- serve("127.0.0.1:0", service.Options{}, 4, 2, 20*time.Millisecond, 0, ckpt, 0, bound)
		}()
		base := "http://" + <-bound
		if ingest {
			if rep := postBatch(t, base, smokeBatch("web-01", 1)); rep.Accepted != 4 {
				t.Fatalf("ingest: %+v", rep)
			}
			// The push path against the live ticker: epoch 1 is the
			// creation state, so the first decision answers the watch.
			resp, err := http.Get(base + "/alloc?app=web-01&watch=1&epoch=1&timeout=5s")
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("watch against live daemon: %d", resp.StatusCode)
			}
		} else {
			deadline := time.Now().Add(2 * time.Second)
			for {
				resp, err := http.Get(base + "/alloc?app=web-01")
				if err == nil {
					resp.Body.Close()
					if resp.StatusCode == http.StatusOK {
						break
					}
					t.Fatalf("restored daemon: /alloc -> %d", resp.StatusCode)
				}
				if time.Now().After(deadline) {
					t.Fatal("restored daemon never answered /alloc")
				}
				time.Sleep(10 * time.Millisecond)
			}
		}
		if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
			t.Fatal(err)
		}
		select {
		case code := <-exit:
			return code
		case <-time.After(10 * time.Second):
			t.Fatal("sharded daemon did not drain within 10s of SIGTERM")
			return -1
		}
	}

	if code := run(true); code != exitOK {
		t.Fatalf("first sharded daemon exit=%d, want %d", code, exitOK)
	}
	// The drain must have written the manifest plus the owning shard's
	// file; a wrong-count restart must be refused.
	if _, err := os.Stat(ckpt); err != nil {
		t.Fatalf("drain wrote no manifest: %v", err)
	}
	// The drain's save is the manifest's first generation, so shard
	// files carry the .g1 stamp (each save writes a fresh generation and
	// GCs the old one only after the manifest commits).
	own := service.ShardIndex("web-01", 4)
	if _, err := os.Stat(fmt.Sprintf("%s.g1.shard%d", ckpt, own)); err != nil {
		t.Fatalf("drain wrote no shard file for the session's shard: %v", err)
	}
	wrong := service.NewSharded(service.Options{}, 2, 1)
	if err := wrong.LoadCheckpoint(ckpt); err == nil {
		t.Fatal("2-shard restore of the 4-shard daemon checkpoint succeeded")
	}
	if code := run(false); code != exitOK {
		t.Fatalf("restarted sharded daemon exit=%d, want %d", code, exitOK)
	}
}

// TestSelftestSharded pins the -shards selftest path: the sharded run
// passes its own SLO and the built-in differential against the
// unsharded service (exit 0); the kill/restart differential runs
// sharded too.
func TestSelftestSharded(t *testing.T) {
	c := selftestConfig{
		opts: service.Options{}, apps: 40, steps: 4, threads: 2, ways: 8,
		seed: 7, sloP99: time.Minute, killStep: 2, shards: 4, tickWorkers: 2,
	}
	if code := runSelftest(c); code != exitOK {
		t.Fatalf("sharded selftest exit=%d, want %d", code, exitOK)
	}
}

// TestSelftestExitCodes pins the documented 0/3 convention: a clean
// run exits 0, an impossible SLO exits 3 (degraded), both through the
// same harness the CI soak job drives.
func TestSelftestExitCodes(t *testing.T) {
	base := selftestConfig{
		opts: service.Options{}, apps: 20, steps: 4, threads: 2, ways: 8,
		seed: 7, sloP99: time.Minute, killStep: 2,
	}
	if code := runSelftest(base); code != exitOK {
		t.Fatalf("clean selftest exit=%d, want %d", code, exitOK)
	}
	breached := base
	breached.sloP99 = time.Nanosecond
	if code := runSelftest(breached); code != exitDegraded {
		t.Fatalf("SLO-breach selftest exit=%d, want %d", code, exitDegraded)
	}
	// -kill-step with a wall-clock deadline cannot be verified exactly;
	// that is a usage error, not a degraded run.
	invalid := base
	invalid.deadline = time.Second
	if code := runSelftest(invalid); code != exitHard {
		t.Fatalf("kill-step+deadline selftest exit=%d, want %d", code, exitHard)
	}
}
