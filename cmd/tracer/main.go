// Command tracer records benchmark access traces to files and replays
// them through the simulator. Recorded traces decouple workload capture
// from simulation: a trace captured once (here from the synthetic
// generators; in principle from any tool that writes the same format)
// can drive any policy, configuration or study without re-generating.
//
// Usage:
//
//	tracer -record /tmp/cg -bench cg -instr 2000000   # writes thread-N.itrc
//	tracer -replay /tmp/cg -policy model-based        # simulates from traces
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"intracache/internal/atomicfile"
	"intracache/internal/core"
	"intracache/internal/experiment"
	"intracache/internal/trace"
	"intracache/internal/workload"
)

func main() {
	record := flag.String("record", "", "directory to record per-thread traces into")
	replay := flag.String("replay", "", "directory of per-thread traces to replay")
	bench := flag.String("bench", "cg", "benchmark to record")
	policyName := flag.String("policy", "model-based", "policy for replay")
	instr := flag.Uint64("instr", 2_000_000, "instructions to record per thread")
	sections := flag.Int("sections", 30, "parallel sections to replay")
	seed := flag.Uint64("seed", 42, "workload seed for recording")
	flag.Parse()

	cfg := experiment.DefaultConfig()
	cfg.Seed = *seed
	switch {
	case *record != "":
		if err := doRecord(cfg, *record, *bench, *instr); err != nil {
			fatal(err)
		}
	case *replay != "":
		if err := doReplay(cfg, *replay, *policyName, *sections); err != nil {
			fatal(err)
		}
	default:
		fatal(fmt.Errorf("need -record DIR or -replay DIR"))
	}
}

func tracePath(dir string, thread int) string {
	return filepath.Join(dir, fmt.Sprintf("thread-%d.itrc", thread))
}

func doRecord(cfg experiment.Config, dir, bench string, instr uint64) error {
	prof, err := workload.ByName(bench)
	if err != nil {
		return err
	}
	gens, err := prof.Generators(cfg.NumThreads, cfg.LineBytes, cfg.Seed)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for i, g := range gens {
		// Atomic write: a crash mid-record leaves no half-written trace
		// masquerading as a complete one.
		f, err := atomicfile.Create(tracePath(dir, i), 0o644)
		if err != nil {
			return err
		}
		if err := trace.Record(f, g, instr, cfg.LineBytes); err != nil {
			f.Abort()
			return fmt.Errorf("recording thread %d: %w", i, err)
		}
		if err := f.Commit(); err != nil {
			return err
		}
		st, err := os.Stat(tracePath(dir, i))
		if err != nil {
			return err
		}
		fmt.Printf("thread %d: %d instructions -> %s (%d bytes)\n", i, instr, tracePath(dir, i), st.Size())
	}
	return nil
}

func doReplay(cfg experiment.Config, dir, policyName string, sections int) error {
	pol, err := core.ParsePolicy(policyName)
	if err != nil {
		return err
	}
	sources := make([]trace.Source, cfg.NumThreads)
	for i := range sources {
		f, err := os.Open(tracePath(dir, i))
		if err != nil {
			return err
		}
		rp, err := trace.NewReplayer(f, cfg.LineBytes)
		f.Close()
		if err != nil {
			return fmt.Errorf("loading thread %d: %w", i, err)
		}
		sources[i] = rp
		fmt.Printf("thread %d: %d recorded accesses\n", i, rp.Len())
	}
	cfg.Sections = sections
	run, err := experiment.RunSources(cfg, filepath.Base(dir), sources, pol, experiment.BySections)
	if err != nil {
		return err
	}
	fmt.Printf("\nreplayed %q under %s\n", run.Benchmark, run.Policy)
	fmt.Printf("  wall cycles:     %d\n", run.Result.WallCycles)
	fmt.Printf("  application CPI: %.3f\n", run.Result.AppCPI())
	if run.Result.FinalTargets != nil {
		fmt.Printf("  final partition: %v\n", run.Result.FinalTargets)
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracer:", err)
	os.Exit(1)
}
