// Command figures regenerates every table and figure of the paper's
// evaluation (Figs. 2-10, 15, 18-22) in text form, using the drivers in
// internal/experiment and the renderers in internal/report.
//
// Usage:
//
//	figures            # all figures at default (paper-shaped) scale
//	figures -fig 19    # a single figure
//	figures -quick     # reduced scale (seconds instead of minutes)
//	figures -seed 7    # different workload seed
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"intracache/internal/core"
	"intracache/internal/experiment"
	"intracache/internal/report"
	"intracache/internal/svg"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: 2-10, 15, 18-22 or 'all'")
	quick := flag.Bool("quick", false, "reduced scale for a fast smoke run")
	seed := flag.Uint64("seed", 42, "workload random seed")
	intervals := flag.Int("intervals", 0, "override interval count (0 = default)")
	sections := flag.Int("sections", 0, "override section count (0 = default)")
	seeds := flag.Int("seeds", 1, "replicate the comparison figures (19-21) over N seeds and report mean ± 95% CI")
	svgOut := flag.String("svg", "", "also write each chart figure as an SVG file into this directory")
	flag.Parse()
	seedReplicates = *seeds
	svgDir = *svgOut
	if svgDir != "" {
		if err := os.MkdirAll(svgDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "figures:", err)
			os.Exit(1)
		}
	}

	cfg := experiment.DefaultConfig()
	if *quick {
		cfg = experiment.QuickConfig()
		cfg.Intervals = 16
		cfg.Sections = 20
	}
	cfg.Seed = *seed
	if *intervals > 0 {
		cfg.Intervals = *intervals
	}
	if *sections > 0 {
		cfg.Sections = *sections
	}

	all := map[string]func(experiment.Config) error{
		"2": fig2, "3": fig3, "4": fig4, "5": fig5, "6": fig6, "7": fig7,
		"8": fig8, "9": fig9, "10": fig10, "15": fig15, "18": fig18,
		"19": fig19, "20": fig20, "21": fig21, "22": fig22,
	}
	order := []string{"2", "3", "4", "5", "6", "7", "8", "9", "10", "15", "18", "19", "20", "21", "22"}

	run := func(id string) {
		f, ok := all[id]
		if !ok {
			fmt.Fprintf(os.Stderr, "figures: unknown figure %q (have %s)\n", id, strings.Join(order, ", "))
			os.Exit(2)
		}
		if err := f(cfg); err != nil {
			fmt.Fprintf(os.Stderr, "figures: fig %s: %v\n", id, err)
			os.Exit(1)
		}
	}

	if *fig == "all" {
		for _, id := range order {
			run(id)
			fmt.Println()
		}
		return
	}
	run(strings.TrimPrefix(*fig, "fig"))
}

// svgDir, when non-empty, receives an SVG rendering of each chart
// figure alongside the text output.
var svgDir string

// writeSVG stores one figure's SVG document (no-op without -svg). The
// write is atomic, so an interrupted run never leaves a truncated SVG.
func writeSVG(name, doc string) {
	if svgDir == "" {
		return
	}
	path := filepath.Join(svgDir, name+".svg")
	if err := report.SaveText(path, doc); err != nil {
		fmt.Fprintf(os.Stderr, "figures: writing %s: %v\n", path, err)
		return
	}
	fmt.Printf("(svg written to %s)\n", path)
}

func threadLabels(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = "thread " + strconv.Itoa(i+1)
	}
	return out
}

// fig2 prints the system configuration table (paper Fig. 2), both the
// paper's original values and this reproduction's scaled values.
func fig2(cfg experiment.Config) error {
	t := report.NewTable("Fig. 2 — system configuration (paper -> this reproduction, 1/4 capacity scale)",
		"parameter", "paper", "reproduction")
	t.AddRow("number of cores", "4", fmt.Sprintf("%d", cfg.NumThreads))
	t.AddRow("number of threads", "4", fmt.Sprintf("%d", cfg.NumThreads))
	t.AddRow("L1 cache size", "8 KB", fmt.Sprintf("%d KB", cfg.L1KB))
	t.AddRow("L1 cache associativity", "4", fmt.Sprintf("%d", cfg.L1Ways))
	t.AddRow("L2 cache type", "shared", "shared")
	t.AddRow("L2 cache size", "1 MB", fmt.Sprintf("%d KB", cfg.L2KB))
	t.AddRow("L2 cache associativity", "64", fmt.Sprintf("%d", cfg.L2Ways))
	t.AddRow("line size", "64 B", fmt.Sprintf("%d B", cfg.LineBytes))
	t.AddRow("execution interval", "15 M instr", fmt.Sprintf("%d instr", cfg.IntervalInstructions))
	fmt.Print(t.String())
	return nil
}

func fig3(cfg experiment.Config) error {
	series, err := experiment.Fig3ThreadPerformance(cfg)
	if err != nil {
		return err
	}
	labels := make([]string, len(series))
	values := make([][]float64, len(series))
	for i, s := range series {
		labels[i] = s.Benchmark
		values[i] = s.Values
	}
	fmt.Print(report.GroupedBars(
		"Fig. 3 — per-thread performance normalised to the fastest thread (shared cache)",
		labels, threadLabels(cfg.NumThreads), values, 30))
	writeSVG("fig03-thread-performance", svg.GroupedHBars(
		"Fig. 3 — per-thread performance (normalised)", labels, threadLabels(cfg.NumThreads), values, 720))
	return nil
}

func fig4(cfg experiment.Config) error {
	series, err := experiment.Fig4ThreadMisses(cfg)
	if err != nil {
		return err
	}
	labels := make([]string, len(series))
	values := make([][]float64, len(series))
	for i, s := range series {
		labels[i] = s.Benchmark
		values[i] = s.Values
	}
	fmt.Print(report.GroupedBars(
		"Fig. 4 — per-thread L2 misses normalised to the worst thread (shared cache)",
		labels, threadLabels(cfg.NumThreads), values, 30))
	writeSVG("fig04-thread-misses", svg.GroupedHBars(
		"Fig. 4 — per-thread L2 misses (normalised)", labels, threadLabels(cfg.NumThreads), values, 720))
	return nil
}

func fig5(cfg experiment.Config) error {
	corrs, avg, err := experiment.Fig5Correlation(cfg)
	if err != nil {
		return err
	}
	labels := make([]string, len(corrs))
	values := make([]float64, len(corrs))
	for i, c := range corrs {
		labels[i] = c.Benchmark
		values[i] = c.R
	}
	fmt.Print(report.Bars("Fig. 5 — correlation between per-interval CPI and L2 misses (paper avg ~0.97)",
		labels, values, 40))
	fmt.Printf("average: %.3f\n", avg)
	writeSVG("fig05-correlation", svg.HBars("Fig. 5 — CPI vs L2-miss correlation", labels, values, 680))
	return nil
}

func fig6(cfg experiment.Config) error {
	series, err := experiment.Fig6SwimPhases(cfg)
	if err != nil {
		return err
	}
	fmt.Print(report.Series(
		fmt.Sprintf("Fig. 6 — swim per-thread performance (IPC) across %d intervals (phase behaviour)", cfg.Intervals),
		threadLabels(len(series.Threads)), series.Threads))
	writeSVG("fig06-swim-phases", svg.Lines("Fig. 6 — swim per-thread IPC per interval",
		threadLabels(len(series.Threads)), series.Threads, 820, 320))
	return nil
}

func fig7(cfg experiment.Config) error {
	series, variable, err := experiment.Fig7SwimMisses(cfg)
	if err != nil {
		return err
	}
	fmt.Print(report.Series(
		fmt.Sprintf("Fig. 7 — swim L2 misses per interval; most phase-variable thread is thread %d", variable+1),
		[]string{fmt.Sprintf("thread %d", variable+1)},
		[][]float64{series.Threads[variable]}))
	writeSVG("fig07-swim-misses", svg.Lines(
		fmt.Sprintf("Fig. 7 — swim thread %d L2 misses per interval", variable+1),
		[]string{fmt.Sprintf("thread %d", variable+1)},
		[][]float64{series.Threads[variable]}, 820, 300))
	return nil
}

func fig8(cfg experiment.Config) error {
	stats9, avg, err := experiment.Fig8And9Interaction(cfg)
	if err != nil {
		return err
	}
	labels := make([]string, len(stats9))
	values := make([]float64, len(stats9))
	for i, s := range stats9 {
		labels[i] = s.Benchmark
		values[i] = s.InterThreadPct
	}
	fmt.Print(report.Bars("Fig. 8 — %% of cache interactions that are inter-thread (paper avg ~11.5%)",
		labels, values, 40))
	fmt.Printf("average: %.2f%%\n", avg)
	writeSVG("fig08-interthread", svg.HBars("Fig. 8 — inter-thread interaction share (%)", labels, values, 680))
	return nil
}

func fig9(cfg experiment.Config) error {
	stats9, _, err := experiment.Fig8And9Interaction(cfg)
	if err != nil {
		return err
	}
	t := report.NewTable("Fig. 9 — breakdown of inter-thread interactions",
		"benchmark", "constructive %", "destructive %")
	for _, s := range stats9 {
		t.AddRow(s.Benchmark, s.ConstructivePct, 100-s.ConstructivePct)
	}
	fmt.Print(t.String())
	return nil
}

func fig10(cfg experiment.Config) error {
	ws, err := experiment.Fig10WaySensitivity(cfg)
	if err != nil {
		return err
	}
	t := report.NewTable("Fig. 10 — swim thread CPI at 16 vs 32 total ways (heterogeneous sensitivity)",
		"thread", "CPI @16 ways", "CPI @32 ways", "drop %")
	for _, w := range ws {
		t.AddRow(fmt.Sprintf("thread %d", w.Thread+1), w.CPI16Ways, w.CPI32Ways, w.DropPct)
	}
	fmt.Print(t.String())
	return nil
}

func fig15(cfg experiment.Config) error {
	curves, targets, err := experiment.Fig15Models(cfg, "cg")
	if err != nil {
		return err
	}
	labels := make([]string, len(curves))
	rows := make([][]float64, len(curves))
	for i, c := range curves {
		labels[i] = fmt.Sprintf("thread %d (model over ways 1..%d)", c.Thread+1, len(c.Curve))
		rows[i] = c.Curve
	}
	fmt.Print(report.Series("Fig. 15 — fitted CPI-vs-ways models (cg under the model-based scheme)",
		labels, rows))
	writeSVG("fig15-models", svg.Lines("Fig. 15 — fitted CPI-vs-ways models (cg)",
		threadLabels(len(curves)), rows, 820, 340))
	fmt.Printf("chosen partition: %v (sums to %d ways)\n", targets, cfg.L2Ways)
	t := report.NewTable("observed data points per thread", "thread", "ways -> CPI")
	for _, c := range curves {
		var b strings.Builder
		for i, w := range c.Ways {
			if i > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "%d->%.2f", w, c.CPIs[i])
		}
		t.AddRow(fmt.Sprintf("thread %d", c.Thread+1), b.String())
	}
	fmt.Print(t.String())
	return nil
}

func fig18(cfg experiment.Config) error {
	rows, err := experiment.Fig18Snapshot(cfg, 4)
	if err != nil {
		return err
	}
	t := report.NewTable("Fig. 18 — cg way assignment and overall CPI across consecutive intervals (model-based)",
		"interval", "thread 1", "thread 2", "thread 3", "thread 4", "overall CPI")
	for _, r := range rows {
		cells := []interface{}{r.Interval}
		for _, w := range r.Ways {
			cells = append(cells, w)
		}
		cells = append(cells, r.OverallCPI)
		t.AddRow(cells...)
	}
	fmt.Print(t.String())
	return nil
}

// seedReplicates > 1 switches the comparison figures to multi-seed
// mode with 95% confidence intervals.
var seedReplicates = 1

// seededComparisonFigure renders a comparison figure replicated over
// seedReplicates seeds.
func seededComparisonFigure(title string, cfg experiment.Config, baseline, candidate core.Policy) error {
	out, err := experiment.CompareAllSeeds(cfg, baseline, candidate,
		experiment.DefaultSeeds(seedReplicates), 0)
	if err != nil {
		return err
	}
	t := report.NewTable(fmt.Sprintf("%s — %d seeds, mean ± 95%% CI", title, seedReplicates),
		"benchmark", "mean %", "± CI", "min %", "max %")
	var means []float64
	for _, sc := range out {
		t.AddRow(sc.Benchmark, sc.Mean, sc.CI95, sc.Min(), sc.Max())
		means = append(means, sc.Mean)
	}
	fmt.Print(t.String())
	var sum, best float64
	for i, m := range means {
		sum += m
		if i == 0 || m > best {
			best = m
		}
	}
	fmt.Printf("mean of means: %+.2f%%   best: %+.2f%%\n", sum/float64(len(means)), best)
	return nil
}

func comparisonFigure(title string, cs []experiment.Comparison) {
	comparisonFigureSVG(title, "", cs)
}

func comparisonFigureSVG(title, svgName string, cs []experiment.Comparison) {
	labels := make([]string, len(cs))
	values := make([]float64, len(cs))
	for i, c := range cs {
		labels[i] = c.Benchmark
		values[i] = c.ImprovementPct
	}
	fmt.Print(report.Bars(title, labels, values, 40))
	fmt.Printf("mean: %+.2f%%   max: %+.2f%%\n",
		experiment.MeanImprovement(cs), experiment.MaxImprovement(cs))
	if svgName != "" {
		writeSVG(svgName, svg.HBars(title, labels, values, 680))
	}
}

func fig19(cfg experiment.Config) error {
	const title = "Fig. 19 — improvement of dynamic (model-based) over private/equal-static cache (paper: up to 23%, avg ~11%)"
	if seedReplicates > 1 {
		return seededComparisonFigure(title, cfg, core.PolicyPrivate, core.PolicyModelBased)
	}
	cs, err := experiment.Fig19VsPrivate(cfg)
	if err != nil {
		return err
	}
	comparisonFigureSVG(title, "fig19-vs-private", cs)
	return nil
}

func fig20(cfg experiment.Config) error {
	const title = "Fig. 20 — improvement over shared unpartitioned cache (paper: up to 15%, avg ~9%)"
	if seedReplicates > 1 {
		return seededComparisonFigure(title, cfg, core.PolicyShared, core.PolicyModelBased)
	}
	cs, err := experiment.Fig20VsShared(cfg)
	if err != nil {
		return err
	}
	comparisonFigureSVG(title, "fig20-vs-shared", cs)
	return nil
}

func fig21(cfg experiment.Config) error {
	const title = "Fig. 21 — improvement over throughput-oriented (UCP-style) partitioning (paper: up to 20%)"
	if seedReplicates > 1 {
		return seededComparisonFigure(title, cfg, core.PolicyThroughputUCP, core.PolicyModelBased)
	}
	cs, err := experiment.Fig21VsThroughput(cfg)
	if err != nil {
		return err
	}
	comparisonFigureSVG(title, "fig21-vs-throughput", cs)
	return nil
}

func fig22(cfg experiment.Config) error {
	res, err := experiment.Fig22EightCore(cfg)
	if err != nil {
		return err
	}
	comparisonFigureSVG("Fig. 22a — 8-core CMP: improvement over private cache", "fig22a-8core-vs-private", res.VsPrivate)
	fmt.Println()
	comparisonFigureSVG("Fig. 22b — 8-core CMP: improvement over shared cache", "fig22b-8core-vs-shared", res.VsShared)
	return nil
}
