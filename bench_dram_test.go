package intracache

// Helper for BenchmarkAblationDRAMModel: the experiment package's
// Compare always uses the flat latency model, so the banked variant
// builds its two runs directly against the simulator.

import (
	"intracache/internal/cache"
	"intracache/internal/core"
	"intracache/internal/experiment"
	"intracache/internal/mem"
	"intracache/internal/sim"
	"intracache/internal/trace"
	"intracache/internal/workload"
)

// compareWithDRAM runs prof under shared and model-based policies with
// the banked DRAM model attached and returns the improvement percent.
func compareWithDRAM(cfg experiment.Config, prof workload.Profile) (float64, error) {
	wall := func(pol core.Policy) (uint64, error) {
		gens, err := prof.Generators(cfg.NumThreads, cfg.LineBytes, cfg.Seed)
		if err != nil {
			return 0, err
		}
		ctl, _, err := core.ControllerFor(pol)
		if err != nil {
			return 0, err
		}
		dram := mem.DefaultConfig()
		p := sim.Params{
			NumThreads: cfg.NumThreads,
			L1: cache.Config{
				SizeBytes: cfg.L1KB * 1024, Ways: cfg.L1Ways,
				LineBytes: cfg.LineBytes, NumThreads: 1,
			},
			L2: cache.Config{
				SizeBytes: cfg.L2KB * 1024, Ways: cfg.L2Ways,
				LineBytes: cfg.LineBytes, NumThreads: cfg.NumThreads,
			},
			L2Org:                core.L2OrgFor(pol),
			BaseCycles:           cfg.BaseCycles,
			L2HitCycles:          cfg.L2HitCycles,
			MemCycles:            cfg.MemCycles,
			SectionInstructions:  cfg.SectionInstructions,
			IntervalInstructions: cfg.IntervalInstructions,
			DRAM:                 &dram,
		}
		s, err := sim.New(p, trace.Sources(gens), ctl, prof.PhaseFunc(cfg.NumThreads))
		if err != nil {
			return 0, err
		}
		return s.RunSections(cfg.Sections).WallCycles, nil
	}
	base, err := wall(core.PolicyShared)
	if err != nil {
		return 0, err
	}
	dyn, err := wall(core.PolicyModelBased)
	if err != nil {
		return 0, err
	}
	return 100 * (float64(base) - float64(dyn)) / float64(base), nil
}

// compareMechanisms runs prof under model-based partitioning with both
// enforcement mechanisms (paper Sec. V eviction control vs CAT-style
// way masks) and returns each one's improvement over the shared cache.
func compareMechanisms(cfg experiment.Config, prof workload.Profile) (evict, mask float64, err error) {
	wall := func(pol core.Policy, useMask bool) (uint64, error) {
		gens, err := prof.Generators(cfg.NumThreads, cfg.LineBytes, cfg.Seed)
		if err != nil {
			return 0, err
		}
		ctl, _, err := core.ControllerFor(pol)
		if err != nil {
			return 0, err
		}
		p := sim.Params{
			NumThreads: cfg.NumThreads,
			L1: cache.Config{
				SizeBytes: cfg.L1KB * 1024, Ways: cfg.L1Ways,
				LineBytes: cfg.LineBytes, NumThreads: 1,
			},
			L2: cache.Config{
				SizeBytes: cfg.L2KB * 1024, Ways: cfg.L2Ways,
				LineBytes: cfg.LineBytes, NumThreads: cfg.NumThreads,
			},
			L2Org:                core.L2OrgFor(pol),
			MaskPartitioning:     useMask,
			BaseCycles:           cfg.BaseCycles,
			L2HitCycles:          cfg.L2HitCycles,
			MemCycles:            cfg.MemCycles,
			SectionInstructions:  cfg.SectionInstructions,
			IntervalInstructions: cfg.IntervalInstructions,
		}
		s, err := sim.New(p, trace.Sources(gens), ctl, prof.PhaseFunc(cfg.NumThreads))
		if err != nil {
			return 0, err
		}
		return s.RunSections(cfg.Sections).WallCycles, nil
	}
	base, err := wall(core.PolicyShared, false)
	if err != nil {
		return 0, 0, err
	}
	ev, err := wall(core.PolicyModelBased, false)
	if err != nil {
		return 0, 0, err
	}
	mk, err := wall(core.PolicyModelBased, true)
	if err != nil {
		return 0, 0, err
	}
	imp := func(c uint64) float64 { return 100 * (float64(base) - float64(c)) / float64(base) }
	return imp(ev), imp(mk), nil
}

// compareHybridTADIP returns the improvements over the shared cache of
// (a) pure TADIP, (b) pure model-based partitioning, and (c) the hybrid
// (model-based partitioning with TADIP insertion inside partitions).
func compareHybridTADIP(cfg experiment.Config, prof workload.Profile) (tadip, model, hybrid float64, err error) {
	wall := func(pol core.Policy, tadipInsert bool) (uint64, error) {
		gens, err := prof.Generators(cfg.NumThreads, cfg.LineBytes, cfg.Seed)
		if err != nil {
			return 0, err
		}
		ctl, _, err := core.ControllerFor(pol)
		if err != nil {
			return 0, err
		}
		p := sim.Params{
			NumThreads: cfg.NumThreads,
			L1: cache.Config{
				SizeBytes: cfg.L1KB * 1024, Ways: cfg.L1Ways,
				LineBytes: cfg.LineBytes, NumThreads: 1,
			},
			L2: cache.Config{
				SizeBytes: cfg.L2KB * 1024, Ways: cfg.L2Ways,
				LineBytes: cfg.LineBytes, NumThreads: cfg.NumThreads,
			},
			L2Org:                core.L2OrgFor(pol),
			TADIPInsertion:       tadipInsert,
			BaseCycles:           cfg.BaseCycles,
			L2HitCycles:          cfg.L2HitCycles,
			MemCycles:            cfg.MemCycles,
			SectionInstructions:  cfg.SectionInstructions,
			IntervalInstructions: cfg.IntervalInstructions,
		}
		s, err := sim.New(p, trace.Sources(gens), ctl, prof.PhaseFunc(cfg.NumThreads))
		if err != nil {
			return 0, err
		}
		return s.RunSections(cfg.Sections).WallCycles, nil
	}
	base, err := wall(core.PolicyShared, false)
	if err != nil {
		return 0, 0, 0, err
	}
	imp := func(c uint64) float64 { return 100 * (float64(base) - float64(c)) / float64(base) }
	td, err := wall(core.PolicyTADIP, false)
	if err != nil {
		return 0, 0, 0, err
	}
	mb, err := wall(core.PolicyModelBased, false)
	if err != nil {
		return 0, 0, 0, err
	}
	hy, err := wall(core.PolicyModelBased, true)
	if err != nil {
		return 0, 0, 0, err
	}
	return imp(td), imp(mb), imp(hy), nil
}
