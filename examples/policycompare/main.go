// Policycompare reproduces the paper's core comparison on a single
// benchmark: the same fixed work is executed under every cache
// management policy (the paper's three baselines, its two dynamic
// schemes, plus the TADIP adaptive-insertion baseline this repo adds)
// and their wall-clock times are compared. This is the per-benchmark
// view behind Figs. 19-21.
package main

import (
	"flag"
	"fmt"
	"log"

	"intracache"
)

func main() {
	bench := flag.String("bench", "mgrid", "benchmark to compare policies on")
	sections := flag.Int("sections", 40, "parallel sections per run (fixed work)")
	flag.Parse()

	cfg := intracache.DefaultConfig()
	cfg.Sections = *sections

	type row struct {
		policy intracache.Policy
		cycles uint64
	}
	var rows []row
	for _, pol := range intracache.Policies() {
		run, err := intracache.Simulate(cfg, *bench, pol, intracache.BySections)
		if err != nil {
			log.Fatal(err)
		}
		rows = append(rows, row{pol, run.Result.WallCycles})
	}

	// Everything is normalised to the shared (unpartitioned) baseline.
	var sharedCycles uint64
	for _, r := range rows {
		if r.policy == intracache.PolicyShared {
			sharedCycles = r.cycles
		}
	}
	fmt.Printf("benchmark %q, %d sections of fixed work\n\n", *bench, *sections)
	fmt.Printf("%-18s %14s %12s\n", "policy", "wall cycles", "vs shared")
	for _, r := range rows {
		delta := 100 * (float64(sharedCycles) - float64(r.cycles)) / float64(sharedCycles)
		fmt.Printf("%-18s %14d %+11.2f%%\n", r.policy.String(), r.cycles, delta)
	}
	fmt.Println("\nPositive means faster than the shared cache. The model-based")
	fmt.Println("dynamic partitioner should beat every baseline the paper evaluates;")
	fmt.Println("the private split should trail. TADIP (not in the paper's evaluation)")
	fmt.Println("is a strong competitor on streaming-heavy workloads — see EXPERIMENTS.md.")
}
