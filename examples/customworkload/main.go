// Customworkload shows the downstream-user scenario: you know your own
// application's per-thread cache behaviour and want to know whether
// intra-application cache partitioning would help it.
//
// The example models a pipeline-parallel media encoder: one heavyweight
// motion-estimation thread with a large, irregularly-reused frame
// buffer; one medium entropy-coding thread; and two lightweight
// pre/post-processing threads that mostly stream. The threads share a
// reference-frame region, and every ~25 intervals the encoder switches
// scene (the heavy thread's working set steps down).
package main

import (
	"fmt"
	"log"

	"intracache"
)

func main() {
	encoder := intracache.Profile{
		Name:        "media-encoder",
		Description: "pipeline-parallel encoder: motion estimation + entropy coding + 2 streaming stages",
		MemRatio:    0.34,
		WriteRatio:  0.3,
		// Per-thread private working sets (KiB): the motion-estimation
		// thread dominates.
		WSKB: []int{150, 64, 20, 18},
		// Motion estimation reuses its frame buffer irregularly (low
		// skew); the streaming stages have tight hot loops (high skew).
		ZipfAlpha:    []float64{0.5, 0.6, 0.75, 0.75},
		StreamWeight: []float64{0.03, 0.05, 0.18, 0.18},
		StreamKB:     1024,
		// The shared reference frame.
		SharedKB:     32,
		SharedWeight: 0.10,
		SharedZipf:   0.9,
		// Scene cut: the heavy thread's footprint drops 40% mid-run.
		Phase: intracache.PhaseSpec{
			Kind:         intracache.PhaseStep,
			Threads:      []int{0},
			StepInterval: 25,
			StepScale:    0.6,
		},
	}

	cfg := intracache.DefaultConfig()
	cfg.Sections = 40

	fmt.Println("Would intra-application cache partitioning help this encoder?")
	fmt.Println()
	for _, baseline := range []intracache.Policy{
		intracache.PolicyShared,
		intracache.PolicyPrivate,
		intracache.PolicyThroughputUCP,
	} {
		c, err := intracache.CompareProfile(cfg, encoder, baseline, intracache.PolicyModelBased)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  vs %-16s %+6.2f%%  (%d -> %d cycles)\n",
			baseline.String()+":", c.ImprovementPct, c.BaselineCycles, c.CandidateCycles)
	}

	// Inspect what the partitioner learned about each thread.
	run, err := intracache.SimulateProfile(cfg, encoder, intracache.PolicyModelBased, intracache.ByIntervals)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfinal partition after %d intervals: %v ways\n",
		cfg.Intervals, run.Result.FinalTargets)
	fmt.Println("(thread 1 is the motion-estimation thread — it should hold the most ways)")
}
