// Hierarchical demonstrates the paper's Section VI-C vision: two
// multithreaded applications co-scheduled on one CMP, with an OS-level
// allocator partitioning the shared L2 *between* the applications and
// each application's own runtime system partitioning *within* its
// share — the paper's Fig. 16, end to end.
//
// This example uses the internal experiment harness directly (it is a
// repository example rather than a public-API consumer) because the
// hierarchical composition is an evaluated extension, not part of the
// paper's core contribution.
package main

import (
	"fmt"
	"log"

	"intracache/internal/core"
	"intracache/internal/experiment"
	"intracache/internal/hierarchy"
	"intracache/internal/workload"
)

func main() {
	cfg := experiment.DefaultConfig()
	cfg.Sections = 30

	// Co-schedule cache-hungry mgrid with cache-light bt, two threads each.
	cg, err := workload.ByName("mgrid")
	if err != nil {
		log.Fatal(err)
	}
	bt, err := workload.ByName("bt")
	if err != nil {
		log.Fatal(err)
	}
	profs := []workload.Profile{cg, bt}
	threads := []int{2, 2}

	// Baseline: one unmanaged shared LRU cache for everybody.
	base, err := experiment.RunMultiAppBaseline(cfg, profs, threads, core.PolicyShared, experiment.BySections)
	if err != nil {
		log.Fatal(err)
	}

	// Hierarchical: miss-rate-driven OS split + per-app model-based
	// intra-application partitioning.
	hier, err := experiment.RunMultiApp(cfg, profs, threads,
		&hierarchy.MissRateOSAllocator{ThreadsPerApp: threads},
		func(int) core.Engine { return core.NewModelEngine() },
		experiment.BySections)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("two applications (mgrid + bt, 2 threads each) on one 4-core CMP")
	fmt.Printf("\n%-26s %14s %16s\n", "configuration", "wall cycles", "app CPIs (mgrid,bt)")
	bc := base.AppCPIs()
	hc := hier.AppCPIs()
	fmt.Printf("%-26s %14d %8.2f %7.2f\n", "shared LRU (unmanaged)", base.Result.WallCycles, bc[0], bc[1])
	fmt.Printf("%-26s %14d %8.2f %7.2f\n", "hierarchical (Sec. VI-C)", hier.Result.WallCycles, hc[0], hc[1])

	imp := 100 * (float64(base.Result.WallCycles) - float64(hier.Result.WallCycles)) /
		float64(base.Result.WallCycles)
	fmt.Printf("\nhierarchical improvement: %+.2f%%\n", imp)

	fmt.Println("\nOS budgets and per-thread ways over the first intervals:")
	for _, snap := range hier.Controller.Log() {
		if snap.Interval > 5 {
			break
		}
		fmt.Printf("  interval %2d  budgets %v  thread ways %v\n",
			snap.Interval, snap.Budgets, snap.Targets)
	}
}
