// Quickstart: simulate one multithreaded benchmark under the paper's
// model-based dynamic cache partitioner and print what the runtime
// system did.
package main

import (
	"fmt"
	"log"

	"intracache"
)

func main() {
	cfg := intracache.DefaultConfig()
	cfg.Intervals = 20

	run, err := intracache.Simulate(cfg, "cg", intracache.PolicyModelBased, intracache.ByIntervals)
	if err != nil {
		log.Fatal(err)
	}

	res := run.Result
	fmt.Printf("benchmark %q under %s\n", run.Benchmark, run.Policy)
	fmt.Printf("  wall cycles:     %d\n", res.WallCycles)
	fmt.Printf("  application CPI: %.3f\n", res.AppCPI())
	fmt.Printf("  final partition: %v ways\n", res.FinalTargets)

	// The runtime system logged one decision per execution interval.
	fmt.Println("\ninterval  ways            thread CPIs")
	for _, d := range run.RTS.Decisions() {
		if d.Interval > 6 {
			break
		}
		fmt.Printf("%8d  %-16s", d.Interval, fmt.Sprint(d.Targets))
		for _, c := range d.CPIs {
			fmt.Printf("  %5.2f", c)
		}
		fmt.Println()
	}
	fmt.Println("\nThe slowest (critical path) thread receives the largest share,")
	fmt.Println("and the overall CPI drops interval over interval.")
}
