// Eightcore reproduces the paper's Fig. 22 sensitivity scenario: the
// nine benchmarks scaled to 8 threads on an 8-core CMP with the same
// shared L2, comparing the model-based dynamic partitioner against the
// private and shared baselines.
package main

import (
	"fmt"
	"log"

	"intracache"
)

func main() {
	cfg := intracache.DefaultConfig().WithThreads(8)
	// The paper's 1 MB L2 exceeded the working set at both core counts;
	// the scaled default is sized against 4 threads, so the 8-thread
	// run doubles capacity to preserve the working-set-to-cache ratio
	// (same associativity, twice the sets). See EXPERIMENTS.md.
	cfg.L2KB *= 2
	cfg.Sections = 30

	vsPrivate, err := intracache.CompareAll(cfg, intracache.PolicyPrivate, intracache.PolicyModelBased)
	if err != nil {
		log.Fatal(err)
	}
	vsShared, err := intracache.CompareAll(cfg, intracache.PolicyShared, intracache.PolicyModelBased)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("8-core CMP: improvement of dynamic (model-based) partitioning")
	fmt.Printf("\n%-10s %12s %12s\n", "benchmark", "vs private", "vs shared")
	for i := range vsPrivate {
		fmt.Printf("%-10s %+11.2f%% %+11.2f%%\n",
			vsPrivate[i].Benchmark, vsPrivate[i].ImprovementPct, vsShared[i].ImprovementPct)
	}
	fmt.Printf("\n%-10s %+11.2f%% %+11.2f%%\n", "mean",
		intracache.MeanImprovement(vsPrivate), intracache.MeanImprovement(vsShared))
	fmt.Println("\nThe paper observes gains similar to the 4-core case (its Fig. 22);")
	fmt.Println("the same shape should appear here.")
}
